"""Torn-write tolerance tests for the sweep checkpoint journal.

A journal is only useful if the file a SIGKILL leaves behind loads: the
final line may be torn mid-append, earlier lines must survive verbatim.
"""

import json

from repro.store import SweepJournal, payload_checksum
from repro.store.journal import SCHEMA


def _payload(n):
    return {"schema": "repro.result-payload/1", "value": n}


class TestRoundTrip:
    def test_append_then_load(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        with SweepJournal(path) as journal:
            journal.append("k1", _payload(1))
            journal.append("k2", _payload(2))
        assert SweepJournal(path).load() == {"k1": _payload(1),
                                            "k2": _payload(2)}

    def test_missing_file_loads_empty(self, tmp_path):
        assert SweepJournal(str(tmp_path / "absent")).load() == {}

    def test_duplicate_key_keeps_last(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        with SweepJournal(path) as journal:
            journal.append("k", _payload(1))
            journal.append("k", _payload(2))
        assert SweepJournal(path).load() == {"k": _payload(2)}

    def test_truncate_starts_over(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(path)
        journal.append("k", _payload(1))
        journal.truncate()
        journal.append("k2", _payload(2))
        journal.close()
        assert SweepJournal(path).load() == {"k2": _payload(2)}


class TestDamageTolerance:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        with SweepJournal(path) as journal:
            journal.append("k1", _payload(1))
            journal.append("k2", _payload(2))
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(lines[0])
            fh.write(lines[1][:len(lines[1]) // 2])  # killed mid-append
        assert SweepJournal(path).load() == {"k1": _payload(1)}

    def test_checksum_mismatch_is_dropped(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        record = {"schema": SCHEMA, "key": "k",
                  "sha256": payload_checksum(_payload(1)),
                  "payload": _payload(2)}  # payload != checksum
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
        assert SweepJournal(path).load() == {}

    def test_foreign_schema_and_blank_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        good = {"schema": SCHEMA, "key": "k",
                "sha256": payload_checksum(_payload(1)),
                "payload": _payload(1)}
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n")
            fh.write(json.dumps({"schema": "other/1", "key": "x"}) + "\n")
            fh.write(json.dumps(["not", "a", "dict"]) + "\n")
            fh.write(json.dumps(good) + "\n")
        assert SweepJournal(path).load() == {"k": _payload(1)}
