"""Exactness tests for the result payload round trip.

The store's whole value proposition — warm-cache figure runs and
bit-identical sweep resume — reduces to ``payload_to_result`` rebuilding
the exact ``Result`` that ``result_to_payload`` serialized, including a
full JSON dump/load in between (the on-disk representation).
"""

import json

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.network.config import ALL_SCHEMES
from repro.store import (code_version, key_from_hash, payload_to_config,
                         payload_to_result, result_to_payload, store_key)


def _config(**overrides):
    base = dict(topology="mesh", kx=2, ky=2, concentration=1, routing="xy",
                pattern="uniform", rate=0.05, synth_cycles=120,
                synth_warmup=20, seed=11)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestResultRoundTrip:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES,
                             ids=[s.label for s in ALL_SCHEMES])
    def test_bit_identical_through_json(self, scheme):
        result = run_experiment(_config().with_scheme(scheme))
        payload = json.loads(json.dumps(result_to_payload(result),
                                        default=str))
        rebuilt = payload_to_result(payload)
        assert rebuilt == result  # frozen dataclass: field equality
        assert rebuilt.config == result.config
        assert rebuilt.energy_breakdown == result.energy_breakdown

    def test_manifest_rides_along_but_monitor_report_is_dropped(self):
        result = run_experiment(_config(seed=12), check=True)
        assert result.monitor_report is not None
        payload = result_to_payload(result)
        assert "monitor_report" not in payload
        rebuilt = payload_to_result(payload)
        assert rebuilt.monitor_report is None
        assert rebuilt.manifest == result.manifest

    def test_unknown_schema_is_rejected(self):
        result = run_experiment(_config(seed=13))
        payload = result_to_payload(result)
        payload["schema"] = "repro.result-payload/999"
        with pytest.raises(ValueError, match="schema"):
            payload_to_result(payload)

    def test_config_round_trip_preserves_scheme_object(self):
        cfg = _config(seed=14)
        payload = json.loads(json.dumps(result_to_payload(
            run_experiment(cfg))))
        assert payload_to_config(payload["config"]) == cfg


class TestKeyDerivation:
    def test_key_differs_by_seed(self):
        assert store_key(_config(seed=1)) != store_key(_config(seed=2))

    def test_key_differs_by_any_config_field(self):
        assert store_key(_config(rate=0.05)) != store_key(_config(rate=0.10))

    def test_key_is_stable_for_equal_configs(self):
        assert store_key(_config()) == store_key(_config())

    def test_code_version_salt_invalidates_keys(self, monkeypatch):
        before = store_key(_config())
        monkeypatch.setenv("REPRO_STORE_SALT", "pc-sim-test-salt")
        assert code_version() == "pc-sim-test-salt"
        assert store_key(_config()) != before

    def test_key_from_hash_matches_documented_definition(self):
        import hashlib
        key = key_from_hash("abc123", 7)
        text = f"abc123:{code_version()}:7"
        assert key == hashlib.sha256(text.encode()).hexdigest()
