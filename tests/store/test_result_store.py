"""Durability tests for the content-addressed result store.

The trust model under test (``DESIGN.md`` §11): atomic first-writer-wins
puts, checksum-verified reads that quarantine (never trust, never
silently delete) corrupt entries, gc that only reclaims what can no
longer be addressed, and export bundles that carry only valid entries.
"""

import json
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.store import ResultStore, payload_checksum
from repro.store.result_store import ENTRY_SCHEMA, EXPORT_SCHEMA

PAYLOAD = {"schema": "repro.result-payload/1", "value": 42,
           "nested": {"pi": 3.14159}}
KEY = "ab" + "0" * 62
OTHER_KEY = "cd" + "1" * 62


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


class TestPutGet:
    def test_round_trip(self, store):
        store.put(KEY, PAYLOAD, label="fig12 point")
        assert store.get(KEY) == PAYLOAD
        assert store.stats["puts"] == 1
        assert store.stats["hits"] == 1

    def test_miss_returns_none(self, store):
        assert store.get(KEY) is None
        assert store.stats["misses"] == 1

    def test_first_writer_wins(self, store):
        store.put(KEY, PAYLOAD)
        store.put(KEY, {"schema": "x", "value": "loser"})
        assert store.get(KEY) == PAYLOAD
        assert store.stats["redundant"] == 1

    def test_contains(self, store):
        assert KEY not in store
        store.put(KEY, PAYLOAD)
        assert KEY in store

    def test_entry_envelope_carries_checksum_and_version(self, store):
        path = store.put(KEY, PAYLOAD, kind="result", label="lbl")
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        assert entry["schema"] == ENTRY_SCHEMA
        assert entry["key"] == KEY
        assert entry["label"] == "lbl"
        assert entry["payload_sha256"] == payload_checksum(PAYLOAD)

    def test_no_tmp_debris_after_put(self, store):
        store.put(KEY, PAYLOAD)
        assert os.listdir(store.tmp_dir) == []


class TestCorruption:
    def _corrupt(self, store, key, text):
        path = store._entry_path(key)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)

    def test_flipped_payload_is_quarantined_not_trusted(self, store):
        path = store.put(KEY, PAYLOAD)
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        entry["payload"]["value"] = 43  # bit rot / tampering
        self._corrupt(store, KEY, json.dumps(entry))
        assert store.get(KEY) is None  # recompute, don't trust
        assert store.stats["quarantined"] == 1
        assert KEY not in store  # moved aside...
        assert len(os.listdir(store.quarantine_dir)) == 1  # ...not deleted

    def test_truncated_entry_is_quarantined(self, store):
        path = store.put(KEY, PAYLOAD)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        self._corrupt(store, KEY, text[:len(text) // 2])
        assert store.get(KEY) is None
        assert len(os.listdir(store.quarantine_dir)) == 1

    def test_key_mismatch_is_quarantined(self, store):
        store.put(KEY, PAYLOAD)
        path = store._entry_path(KEY)
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        entry["key"] = OTHER_KEY  # entry filed under the wrong name
        self._corrupt(store, KEY, json.dumps(entry))
        assert store.get(KEY) is None

    def test_recompute_after_quarantine_repopulates(self, store):
        store.put(KEY, PAYLOAD)
        self._corrupt(store, KEY, "not json at all")
        assert store.get(KEY) is None
        store.put(KEY, PAYLOAD)  # the recomputed result
        assert store.get(KEY) == PAYLOAD


class TestVerify:
    def test_clean_store(self, store):
        store.put(KEY, PAYLOAD)
        store.put(OTHER_KEY, PAYLOAD)
        assert store.verify() == {"checked": 2, "ok": 2, "quarantined": []}

    def test_bad_entry_is_reported_and_quarantined(self, store):
        store.put(KEY, PAYLOAD)
        store.put(OTHER_KEY, PAYLOAD)
        with open(store._entry_path(KEY), "w", encoding="utf-8") as fh:
            fh.write("garbage")
        report = store.verify()
        assert report["ok"] == 1
        assert report["quarantined"] == [KEY]
        assert KEY not in store


class TestGc:
    def test_stale_salt_entries_are_removed(self, store, monkeypatch):
        store.put(KEY, PAYLOAD)
        monkeypatch.setenv("REPRO_STORE_SALT", "pc-sim-future")
        removed = store.gc()
        assert removed["stale_version"] == 1
        assert store.keys() == []

    def test_expired_entries_are_removed(self, store):
        path = store.put(KEY, PAYLOAD)
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        now = entry["created_unix"] + 10 * 86400
        removed = store.gc(older_than_s=86400, now=now)
        assert removed["expired"] == 1
        assert store.keys() == []

    def test_fresh_entries_survive(self, store):
        store.put(KEY, PAYLOAD)
        removed = store.gc(older_than_s=86400)
        assert removed == {"stale_version": 0, "expired": 0, "tmp": 0,
                           "quarantine": 0}
        assert store.keys() == [KEY]

    def test_debris_is_swept(self, store):
        with open(os.path.join(store.tmp_dir, "x.tmp"), "w") as fh:
            fh.write("half a write")
        with open(os.path.join(store.quarantine_dir, "y.json"), "w") as fh:
            fh.write("inspected")
        removed = store.gc()
        assert removed["tmp"] == 1
        assert removed["quarantine"] == 1


class TestExport:
    def test_bundle_carries_valid_entries_only(self, store, tmp_path):
        store.put(KEY, PAYLOAD)
        store.put(OTHER_KEY, PAYLOAD)
        with open(store._entry_path(KEY), "w", encoding="utf-8") as fh:
            fh.write("garbage")
        out = store.export(str(tmp_path / "bundle.json"))
        with open(out, encoding="utf-8") as fh:
            bundle = json.load(fh)
        assert bundle["schema"] == EXPORT_SCHEMA
        assert bundle["entry_count"] == 1
        assert bundle["entries"][0]["key"] == OTHER_KEY

    def test_key_restriction(self, store, tmp_path):
        store.put(KEY, PAYLOAD)
        store.put(OTHER_KEY, PAYLOAD)
        out = store.export(str(tmp_path / "bundle.json"), [KEY])
        with open(out, encoding="utf-8") as fh:
            bundle = json.load(fh)
        assert [e["key"] for e in bundle["entries"]] == [KEY]


class TestConcurrency:
    def test_concurrent_writers_one_key_leave_one_valid_entry(self, store):
        keys = [f"{i:02x}" + "f" * 62 for i in range(8)]

        def hammer(worker: int):
            for key in keys:
                store.put(key, PAYLOAD)
            return worker

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        # Every key readable, checksum-valid, exactly once; no debris.
        assert store.keys() == sorted(keys)
        for key in keys:
            assert store.get(key) == PAYLOAD
        assert os.listdir(store.tmp_dir) == []
        assert store.verify()["quarantined"] == []
        assert store.stats["puts"] + store.stats["redundant"] == 64

    def test_stats_reset(self, store):
        store.put(KEY, PAYLOAD)
        store.get(KEY)
        store.reset_stats()
        assert all(v == 0 for v in store.stats.values())
        snap = store.stats_dict()
        assert snap["dir"] == store.root
