"""End-to-end tests of ``python -m repro store ...`` through ``main()``."""

import json

import pytest

from repro.__main__ import main
from repro.store import ResultStore

PAYLOAD = {"schema": "repro.result-payload/1", "value": 1}
KEY = "ab" + "0" * 62


@pytest.fixture
def store_dir(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.put(KEY, PAYLOAD, label="test entry")
    return store.root


class TestStoreCli:
    def test_ls(self, store_dir, capsys):
        assert main(["store", "--dir", store_dir, "ls"]) == 0
        out = capsys.readouterr().out
        assert KEY[:16] in out
        assert "test entry" in out
        assert "1 entries" in out

    def test_verify_clean_exits_zero(self, store_dir, capsys):
        assert main(["store", "--dir", store_dir, "verify"]) == 0
        assert "1 ok" in capsys.readouterr().out

    def test_verify_corrupt_exits_one(self, store_dir, capsys):
        store = ResultStore(store_dir)
        with open(store._entry_path(KEY), "w", encoding="utf-8") as fh:
            fh.write("garbage")
        assert main(["store", "--dir", store_dir, "verify"]) == 1
        assert "1 quarantined" in capsys.readouterr().out

    def test_gc(self, store_dir, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SALT", "pc-sim-other")
        assert main(["store", "--dir", store_dir, "gc"]) == 0
        assert "removed 1 stale-salt" in capsys.readouterr().out

    def test_export(self, store_dir, tmp_path, capsys):
        bundle = str(tmp_path / "bundle.json")
        assert main(["store", "--dir", store_dir, "export", bundle]) == 0
        with open(bundle, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["entry_count"] == 1
        assert doc["entries"][0]["key"] == KEY

    def test_repro_store_env_is_the_default_dir(self, store_dir, capsys,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_STORE", store_dir)
        from repro.__main__ import build_parser
        args = build_parser().parse_args(["store", "ls"])
        assert args.dir == store_dir
