"""Unit tests for the pseudo-circuit register and comparator."""

import pytest

from repro.core.pseudo_circuit import PseudoCircuitRegister, Termination


class TestRegister:
    def test_initially_invalid(self):
        reg = PseudoCircuitRegister()
        assert not reg.valid
        assert reg.in_vc == -1 and reg.out_port == -1

    def test_establish(self):
        reg = PseudoCircuitRegister()
        reg.establish(in_vc=2, out_port=3)
        assert reg.valid and reg.in_vc == 2 and reg.out_port == 3

    def test_invalidate_keeps_contents(self):
        reg = PseudoCircuitRegister()
        reg.establish(1, 4)
        reg.invalidate()
        assert not reg.valid
        assert reg.in_vc == 1 and reg.out_port == 4  # speculation needs this

    def test_restore_revalidates(self):
        reg = PseudoCircuitRegister()
        reg.establish(1, 4)
        reg.invalidate()
        reg.restore()
        assert reg.valid and reg.out_port == 4

    def test_restore_requires_history(self):
        with pytest.raises(RuntimeError):
            PseudoCircuitRegister().restore()

    def test_reestablish_overwrites(self):
        reg = PseudoCircuitRegister()
        reg.establish(0, 1)
        reg.establish(3, 2)
        assert reg.in_vc == 3 and reg.out_port == 2


class TestComparator:
    def test_head_match_needs_vc_and_route(self):
        reg = PseudoCircuitRegister()
        reg.establish(2, 3)
        assert reg.matches_head(2, 3)
        assert not reg.matches_head(1, 3)   # wrong VC
        assert not reg.matches_head(2, 1)   # wrong output
        reg.invalidate()
        assert not reg.matches_head(2, 3)   # invalid

    def test_body_match_needs_vc_only(self):
        reg = PseudoCircuitRegister()
        reg.establish(2, 3)
        assert reg.matches_body(2)
        assert not reg.matches_body(0)

    def test_route_conflict_detection(self):
        reg = PseudoCircuitRegister()
        reg.establish(2, 3)
        assert reg.conflicts_with_route(2, 1)       # same VC, other output
        assert not reg.conflicts_with_route(2, 3)   # exact match
        assert not reg.conflicts_with_route(0, 1)   # other VC: ignored
        reg.invalidate()
        assert not reg.conflicts_with_route(2, 1)


def test_termination_reasons_enumerated():
    names = {t.value for t in Termination}
    assert {"conflict_output", "conflict_input", "route_mismatch",
            "no_credit"} <= names
