"""Unit tests for pseudo-circuit speculation logic."""

from repro.core.pseudo_circuit import PseudoCircuitRegister
from repro.core.speculation import OutputHistory, try_restore


def regs(n=4):
    return [PseudoCircuitRegister() for _ in range(n)]


def test_history_records_last_termination():
    h = OutputHistory()
    assert h.last_input == -1
    h.record_termination(2)
    h.record_termination(3)
    assert h.last_input == 3
    h.clear()
    assert h.last_input == -1


def test_single_candidate_restored():
    registers = regs()
    registers[1].establish(0, 5)
    registers[1].invalidate()
    restored = try_restore(5, OutputHistory(), registers,
                           output_is_free=True, credits_available=True)
    assert restored == 1
    assert registers[1].valid


def test_history_breaks_ties():
    registers = regs()
    for i in (0, 2):
        registers[i].establish(0, 5)
        registers[i].invalidate()
    history = OutputHistory()
    history.record_termination(2)
    assert try_restore(5, history, registers, True, True) == 2
    assert registers[2].valid and not registers[0].valid


def test_tie_without_history_restores_nothing():
    registers = regs()
    for i in (0, 2):
        registers[i].establish(0, 5)
        registers[i].invalidate()
    history = OutputHistory()
    history.record_termination(3)  # register 3 points elsewhere
    assert try_restore(5, history, registers, True, True) is None


def test_no_restore_when_output_busy_or_congested():
    registers = regs()
    registers[1].establish(0, 5)
    registers[1].invalidate()
    assert try_restore(5, OutputHistory(), registers,
                       output_is_free=False, credits_available=True) is None
    assert try_restore(5, OutputHistory(), registers,
                       output_is_free=True, credits_available=False) is None


def test_valid_registers_are_not_candidates():
    registers = regs()
    registers[1].establish(0, 5)  # still valid: busy with its own circuit
    assert try_restore(5, OutputHistory(), registers, True, True) is None


def test_never_established_registers_ignored():
    assert try_restore(0, OutputHistory(), regs(), True, True) is None
