"""InvariantViolation: structured context, rendering, pickling."""

import pickle

import pytest

from repro.core.violation import InvariantViolation
from repro.network.credits import CreditCounter, CreditError


class TestStructure:
    def test_carries_full_context(self):
        err = InvariantViolation(
            "credit_conservation", "counter out of sync",
            monitor="credits", cycle=42, router=3, port=1, vc=2,
            expected=4, actual=3)
        assert err.rule == "credit_conservation"
        assert (err.cycle, err.router, err.port, err.vc) == (42, 3, 1, 2)
        assert (err.expected, err.actual) == (4, 3)
        assert isinstance(err, RuntimeError)

    def test_str_renders_rule_and_context(self):
        err = InvariantViolation("flit_order", "out of order",
                                 monitor="conservation", cycle=7,
                                 router=0, port=2, vc=1)
        text = str(err)
        assert "conservation:flit_order" in text
        assert "cycle=7" in text and "router=0" in text

    def test_to_dict_round_trips_every_field(self):
        err = InvariantViolation("deadlock", "stuck", monitor="watchdog",
                                 cycle=9, expected=0, actual=3)
        d = err.to_dict()
        assert d["rule"] == "deadlock" and d["monitor"] == "watchdog"
        assert d["cycle"] == 9 and d["actual"] == 3

    def test_pickle_round_trip(self):
        """Violations must survive the sweep workers' pickle boundary."""
        err = InvariantViolation("credit_underflow", "boom",
                                 monitor="credits", cycle=5, router=1,
                                 port=2, vc=3, expected=">= 1", actual=0)
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is InvariantViolation
        assert clone.to_dict() == err.to_dict()
        assert str(clone) == str(err)


class TestCreditErrorLineage:
    def test_credit_error_is_a_structured_violation(self):
        counter = CreditCounter(2, where=(4, 1, 0))
        counter.consume()
        counter.consume()
        with pytest.raises(InvariantViolation) as exc:
            counter.consume()
        err = exc.value
        assert isinstance(err, CreditError)
        assert err.rule == "credit_underflow"
        assert (err.router, err.port, err.vc) == (4, 1, 0)
        assert err.actual == 0

    def test_credit_error_pickles_as_its_subclass(self):
        counter = CreditCounter(1, where=(0, 0, 0))
        with pytest.raises(CreditError) as exc:
            counter.restore()
        clone = pickle.loads(pickle.dumps(exc.value))
        assert type(clone) is CreditError
        assert clone.rule == "credit_overflow"
