"""Unit tests for the buffer-bypass eligibility predicate."""

from repro.core.buffer_bypass import can_bypass
from repro.core.pseudo_circuit import PseudoCircuitRegister
from repro.network.flit import Packet


def flits(size=5):
    return Packet(0, 1, size, 0).make_flits()


def warm_reg(vc=1, out=2):
    reg = PseudoCircuitRegister()
    reg.establish(vc, out)
    return reg


def test_head_needs_full_match():
    head = flits()[0]
    reg = warm_reg(vc=1, out=2)
    assert can_bypass(reg, head, vc=1, out_port=2, buffer_empty=True)
    assert not can_bypass(reg, head, vc=0, out_port=2, buffer_empty=True)
    assert not can_bypass(reg, head, vc=1, out_port=3, buffer_empty=True)


def test_body_needs_vc_only():
    body = flits()[1]
    reg = warm_reg(vc=1, out=2)
    assert can_bypass(reg, body, vc=1, out_port=99, buffer_empty=True)
    assert not can_bypass(reg, body, vc=0, out_port=2, buffer_empty=True)


def test_occupied_buffer_blocks_bypass():
    head = flits()[0]
    reg = warm_reg(vc=1, out=2)
    assert not can_bypass(reg, head, vc=1, out_port=2, buffer_empty=False)


def test_invalid_circuit_blocks_bypass():
    head = flits()[0]
    reg = warm_reg(vc=1, out=2)
    reg.invalidate()
    assert not can_bypass(reg, head, vc=1, out_port=2, buffer_empty=True)


def test_single_flit_packet_is_a_head():
    single = flits(size=1)[0]
    reg = warm_reg(vc=0, out=4)
    assert can_bypass(reg, single, vc=0, out_port=4, buffer_empty=True)
