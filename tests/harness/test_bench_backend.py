"""Bench backend columns, replay methodology, and the speedup gate."""

import pytest

from repro.harness import bench
from repro.harness.bench import (_InjectionSchedule, _vectorized_speedup,
                                 run_bench)
from repro.network.config import PSEUDO_SB, NetworkConfig
from repro.network.simulator import build_network
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic

CYCLES = 120


class TestInjectionSchedule:
    def test_replay_is_bit_identical_to_live_bernoulli(self):
        """The schedule is the Bernoulli draw sequence: replaying it must
        give the same simulation as ticking the live source."""
        topo = make_topology("mesh", 4, 4, 1)
        schedule = _InjectionSchedule(0.3, CYCLES, topo.num_terminals,
                                      seed=7)

        def run(traffic):
            net = build_network(make_topology("mesh", 4, 4, 1),
                                config=NetworkConfig(pseudo=PSEUDO_SB),
                                seed=7)
            net.run(CYCLES, traffic)
            net.drain(max_cycles=100_000)
            return net.stats.fingerprint()

        live = run(SyntheticTraffic("uniform", topo.num_terminals, 0.3, 5,
                                    seed=7))
        replayed = run(schedule.replay())
        assert live == replayed

    def test_replay_cursor_resets_per_replay(self):
        schedule = _InjectionSchedule(0.5, 40, 16, seed=3)
        first, second = schedule.replay(), schedule.replay()

        class _Count:
            n = 0

            @staticmethod
            def inject(packet):
                _Count.n += 1

        for cycle in range(40):
            first.tick(_Count, cycle)
        seen = _Count.n
        assert seen == len(schedule.entries) > 0
        for cycle in range(40):
            second.tick(_Count, cycle)
        assert _Count.n == 2 * seen

    def test_next_injection_cycle_tracks_cursor(self):
        schedule = _InjectionSchedule(0.5, 40, 16, seed=3)
        replay = schedule.replay()
        assert replay.next_injection_cycle(0) == schedule.entries[0][0]
        for cycle in range(40):
            replay.tick(_Sink, cycle)
        assert replay.next_injection_cycle(40) is None


class _Sink:
    @staticmethod
    def inject(packet):
        pass


class TestBackendColumns:
    @pytest.fixture(scope="class")
    def report(self):
        pytest.importorskip("numpy")
        return run_bench(cycles=CYCLES, repeats=1, out_path=None,
                         show=False, backend="vectorized")

    def test_rows_carry_backend_columns(self, report):
        for row in report["workloads"]:
            assert row["vectorized_stats_identical"] is True
            assert row["vectorized_wall_s"] > 0
            assert row["speedup_vectorized"] == pytest.approx(
                row["wall_s"] / row["vectorized_wall_s"], rel=0.02)

    def test_meta_records_backend_and_methodology(self, report):
        assert report["meta"]["backend"] == "vectorized"
        assert report["meta"]["methodology"] == bench.METHODOLOGY

    def test_summary_records_speedup_geomeans(self, report):
        assert report["summary"]["speedup_vectorized_sat"] > 0
        assert report["summary"]["speedup_vectorized_all"] > 0

    def test_scalar_bench_has_no_backend_columns(self):
        report = run_bench(cycles=CYCLES, repeats=1, out_path=None,
                           show=False)
        assert report["meta"]["backend"] == "scalar"
        for row in report["workloads"]:
            assert "vectorized_wall_s" not in row
        assert "speedup_vectorized_sat" not in report["summary"]


class TestSpeedupGate:
    def test_weighted_geomean_is_sat_only_when_asked(self):
        rows = [
            {"name": "low", "wall_s": 1.0, "vectorized_wall_s": 2.0},
            {"name": "sat", "wall_s": 4.0, "vectorized_wall_s": 1.0},
        ]
        weights = {"low": 1, "sat": 3}
        assert _vectorized_speedup(rows, weights, sat_only=True) == 4.0
        # all-workloads geomean: (0.5^1 * 4^3)^(1/4) = 2**(5/4)
        assert _vectorized_speedup(rows, weights, sat_only=False) == (
            pytest.approx(2 ** 1.25, abs=1e-3))

    def test_missing_vectorized_walls_yield_none(self):
        rows = [{"name": "sat", "wall_s": 1.0}]
        assert _vectorized_speedup(rows, {"sat": 3}, sat_only=True) is None

    def test_gate_floor_failure_raises(self):
        pytest.importorskip("numpy")
        with pytest.raises(AssertionError, match="below the required"):
            run_bench(cycles=CYCLES, repeats=1, out_path=None, show=False,
                      gate=True, backend="vectorized",
                      min_backend_speedup=10_000.0)
