"""Edge-case tests for the process-parallel sweep executor.

Covers the paths an ordinary sweep never exercises: the serial fallback
(``max_workers=1`` must not touch the process pool at all), chunk sizes
larger than the point count, and exception surfacing — a failing point must
come back as a ``SweepPointError`` naming that point's parameters, whether
it died in a worker process or inline.
"""

import pytest

import repro.harness.parallel as parallel
from repro.harness.experiment import (ExperimentConfig, clear_cache,
                                      run_experiment)
from repro.harness.parallel import SweepPointError, run_experiments


def _point(**overrides):
    base = dict(topology="mesh", kx=2, ky=2, concentration=1, routing="xy",
                pattern="uniform", rate=0.05, synth_cycles=120,
                synth_warmup=20)
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class _PoolBomb:
    """Stand-in ProcessPoolExecutor that fails the test if constructed."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("serial fallback must not create a pool")


class TestSerialFallback:
    def test_single_worker_never_creates_a_pool(self, monkeypatch):
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _PoolBomb)
        points = [_point(seed=s) for s in (1, 2, 3)]
        results = run_experiments(points, max_workers=1)
        assert [r.config for r in results] == points
        assert all(r.packets > 0 for r in results)
        # The inline run populated the memo exactly like a pooled run would.
        for point, result in zip(points, results):
            assert run_experiment(point) is result

    def test_single_uncached_point_runs_inline(self, monkeypatch):
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _PoolBomb)
        cached_point = _point(seed=4)
        run_experiment(cached_point)  # warm the memo
        fresh_point = _point(seed=5)
        results = run_experiments([cached_point, fresh_point], max_workers=8)
        assert [r.config for r in results] == [cached_point, fresh_point]


class TestChunking:
    def test_chunk_size_larger_than_point_count(self):
        points = [_point(seed=s) for s in (1, 2, 3)]
        serial = run_experiments(points, max_workers=1)
        clear_cache()
        pooled = run_experiments(points, max_workers=2, chunk_size=50)
        assert pooled == serial  # Result is a frozen dataclass: field-equal

    def test_oversized_chunk_still_caches_results(self):
        points = [_point(seed=s) for s in (6, 7)]
        results = run_experiments(points, max_workers=2, chunk_size=50)
        for point, result in zip(points, results):
            assert run_experiment(point) == result


class TestExceptionSurfacing:
    def test_worker_failure_names_the_failing_point(self):
        good = [_point(seed=s) for s in (1, 2)]
        bad = _point(topology="never-heard-of-it", seed=3)
        with pytest.raises(SweepPointError) as excinfo:
            run_experiments([*good, bad], max_workers=2, chunk_size=1)
        err = excinfo.value
        # The message carries the failing point's parameters, not just the
        # underlying ValueError.
        assert "never-heard-of-it" in err.point
        assert bad.label in err.point
        assert "ValueError" in err.cause
        assert "never-heard-of-it" in str(err)

    def test_inline_failure_chains_the_original_exception(self):
        bad = _point(topology="never-heard-of-it")
        with pytest.raises(SweepPointError) as excinfo:
            run_experiments([bad], max_workers=1)
        err = excinfo.value
        assert bad.label in err.point
        assert isinstance(err.__cause__, ValueError)

    def test_sweep_point_error_survives_pickling(self):
        import pickle

        err = SweepPointError("mesh/xy/...", "ValueError: boom")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.point == err.point
        assert clone.cause == err.cause
        assert str(clone) == str(err)

    def test_sweep_point_error_embeds_manifest(self):
        import pickle

        bad = _point(topology="never-heard-of-it")
        with pytest.raises(SweepPointError) as excinfo:
            run_experiments([bad], max_workers=1)
        err = excinfo.value
        # The failing point's run manifest rides along: the config hash,
        # seed and commit needed to reproduce the failure are in the
        # message, and the manifest survives the worker pickle round-trip.
        assert err.manifest is not None
        assert err.manifest["config"]["topology"] == "never-heard-of-it"
        assert err.manifest["seed"] == bad.seed
        assert "run manifest:" in str(err)
        assert err.manifest["config_sha256"] in str(err)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.manifest == err.manifest
        assert str(clone) == str(err)

    def test_sweep_point_error_manifest_is_optional(self):
        err = SweepPointError("p", "c")
        assert err.manifest is None
        assert "run manifest" not in str(err)
