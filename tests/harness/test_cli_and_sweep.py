"""Tests for the CLI and the sensitivity-sweep module."""

import pytest

from repro.__main__ import main
from repro.harness.sweep import sweep_load, sweep_vcs


def test_cli_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "crossbar" in out and "Table II" in out


def test_cli_run_single_scheme(capsys):
    assert main(["run", "--kx", "4", "--ky", "4", "--scheme", "pseudo_sb",
                 "--rate", "0.05", "--cycles", "300"]) == 0
    out = capsys.readouterr().out
    assert "Pseudo+S+B" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_sweep(capsys):
    assert main(["sweep", "--kind", "load"]) == 0
    assert "sensitivity sweep" in capsys.readouterr().out


def test_sweep_load_reuse_decays_with_contention():
    rows = sweep_load(loads=(0.05, 0.25), synth_cycles=600, synth_warmup=150)
    assert rows[0]["reusability"] > rows[-1]["reusability"]
    for row in rows:
        assert row["reduction"] > 0


def test_sweep_vcs_rows_complete():
    rows = sweep_vcs(vc_counts=(2, 4), synth_cycles=400, synth_warmup=100,
                     kx=4, ky=4)
    assert [r["num_vcs"] for r in rows] == [2, 4]
    for row in rows:
        assert row["latency"] > 0 and 0 <= row["reusability"] <= 1


def test_cli_trace_writes_all_outputs(tmp_path, capsys):
    import json

    prefix = str(tmp_path / "smoke")
    assert main(["trace", "--kx", "4", "--ky", "4", "--pattern", "uniform",
                 "--rate", "0.1", "--cycles", "200", "--out", prefix]) == 0
    out = capsys.readouterr().out
    assert "events over" in out
    with open(prefix + ".trace.json", encoding="utf-8") as fh:
        doc = json.load(fh)  # Perfetto-loadable round trip
    assert doc["traceEvents"]
    with open(prefix + ".jsonl", encoding="utf-8") as fh:
        first = json.loads(next(fh))
    assert "ev" in first and "cycle" in first
    with open(prefix + ".manifest.json", encoding="utf-8") as fh:
        manifest = json.load(fh)
    assert manifest["config"]["pattern"] == "uniform"
    with open(prefix + ".series.csv", encoding="utf-8") as fh:
        assert fh.readline().startswith("start,end,router")
    with open(prefix + ".heatmap.json", encoding="utf-8") as fh:
        assert json.load(fh)["kx"] == 4


def test_cli_run_trace_needs_single_scheme(capsys):
    assert main(["run", "--trace", "x", "--scheme", "all"]) == 2
    assert "single --scheme" in capsys.readouterr().err


def test_cli_run_with_series(tmp_path, capsys):
    prefix = str(tmp_path / "r")
    assert main(["run", "--kx", "4", "--ky", "4", "--scheme", "pseudo_sb",
                 "--rate", "0.05", "--cycles", "200",
                 "--series", prefix]) == 0
    assert (tmp_path / "r.series.csv").exists()
    assert (tmp_path / "r.series.json").exists()


def test_cli_sweep_out_writes_manifest(tmp_path, capsys):
    import json

    out = str(tmp_path / "sweep.json")
    assert main(["sweep", "--kind", "load", "--out", out]) == 0
    with open(out, encoding="utf-8") as fh:
        assert json.load(fh)["rows"]
    with open(str(tmp_path / "sweep.manifest.json"), encoding="utf-8") as fh:
        assert json.load(fh)["config"]["command"] == "sweep"
