"""Tests for the CLI and the sensitivity-sweep module."""

import pytest

from repro.__main__ import main
from repro.harness.sweep import sweep_load, sweep_vcs


def test_cli_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "crossbar" in out and "Table II" in out


def test_cli_run_single_scheme(capsys):
    assert main(["run", "--kx", "4", "--ky", "4", "--scheme", "pseudo_sb",
                 "--rate", "0.05", "--cycles", "300"]) == 0
    out = capsys.readouterr().out
    assert "Pseudo+S+B" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_sweep(capsys):
    assert main(["sweep", "--kind", "load"]) == 0
    assert "sensitivity sweep" in capsys.readouterr().out


def test_sweep_load_reuse_decays_with_contention():
    rows = sweep_load(loads=(0.05, 0.25), synth_cycles=600, synth_warmup=150)
    assert rows[0]["reusability"] > rows[-1]["reusability"]
    for row in rows:
        assert row["reduction"] > 0


def test_sweep_vcs_rows_complete():
    rows = sweep_vcs(vc_counts=(2, 4), synth_cycles=400, synth_warmup=100,
                     kx=4, ky=4)
    assert [r["num_vcs"] for r in rows] == [2, 4]
    for row in rows:
        assert row["latency"] > 0 and 0 <= row["reusability"] <= 1
