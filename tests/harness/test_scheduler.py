"""Fault-tolerance tests for the resumable sweep scheduler.

Covers the resilience paths of ``run_experiments`` (``DESIGN.md`` §11):
deterministic retry/backoff on a fake clock, pool breakage and stall
degradation to serial execution, journal-backed resume, write-through to
the result store, and the ``check=True`` cache bypass.
"""

import pytest

import repro.harness.parallel as parallel
from repro.harness.experiment import (ExperimentConfig, clear_cache,
                                      run_experiment)
from repro.harness.parallel import (SweepPointError, backoff_delay,
                                    run_experiments)
from repro.store import ResultStore, SweepJournal, store_key


def _point(**overrides):
    base = dict(topology="mesh", kx=2, ky=2, concentration=1, routing="xy",
                pattern="uniform", rate=0.05, synth_cycles=120,
                synth_warmup=20)
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class _FakeClock:
    """Injectable ``sleep`` that records the schedule instead of waiting."""

    def __init__(self):
        self.waits = []

    def __call__(self, seconds):
        self.waits.append(seconds)


class TestBackoff:
    def test_schedule_is_exponential_and_capped(self):
        delays = [backoff_delay(k, base=0.5, cap=3.0) for k in (1, 2, 3, 4)]
        assert delays == [0.5, 1.0, 2.0, 3.0]

    def test_schedule_is_deterministic(self):
        assert ([backoff_delay(k, 0.25, 60.0) for k in range(1, 6)]
                == [backoff_delay(k, 0.25, 60.0) for k in range(1, 6)])


class TestRetries:
    def test_flaky_point_succeeds_after_retries(self, monkeypatch):
        clock = _FakeClock()
        real = parallel.run_experiment
        calls = {"n": 0}

        def flaky(cfg, check=False, **kwargs):
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient worker hiccup")
            return real(cfg, check=check, **kwargs)

        monkeypatch.setattr(parallel, "run_experiment", flaky)
        results = run_experiments([_point(seed=21)], max_workers=1,
                                  retries=3, backoff_base=0.5,
                                  sleep=clock)
        assert results[0].packets > 0
        assert calls["n"] == 3
        assert clock.waits == [0.5, 1.0]  # deterministic, no jitter

    def test_exhausted_retries_carry_the_full_history(self, monkeypatch):
        clock = _FakeClock()

        def always_broken(cfg, check=False, **kwargs):
            raise OSError("permanently broken")

        monkeypatch.setattr(parallel, "run_experiment", always_broken)
        with pytest.raises(SweepPointError) as excinfo:
            run_experiments([_point(seed=22)], max_workers=1, retries=2,
                            backoff_base=1.0, backoff_cap=30.0,
                            sleep=clock)
        err = excinfo.value
        assert err.attempts == 3
        assert err.backoff_s == [1.0, 2.0]
        assert clock.waits == [1.0, 2.0]
        assert "after 3 attempts" in str(err)
        assert "backoff: 1s, 2s" in str(err)
        assert isinstance(err.__cause__, OSError)

    def test_zero_retries_raises_the_original_error(self, monkeypatch):
        def broken(cfg, check=False, **kwargs):
            raise ValueError("boom")

        monkeypatch.setattr(parallel, "run_experiment", broken)
        with pytest.raises(SweepPointError) as excinfo:
            run_experiments([_point(seed=23)], max_workers=1)
        err = excinfo.value
        assert err.attempts == 1
        assert err.backoff_s == []
        assert isinstance(err.__cause__, ValueError)

    def test_error_with_history_survives_pickling(self):
        import pickle

        err = SweepPointError("p", "c", attempts=3, backoff_s=[0.5, 1.0])
        clone = pickle.loads(pickle.dumps(err))
        assert clone.attempts == 3
        assert clone.backoff_s == [0.5, 1.0]
        assert str(clone) == str(err)

    def test_other_points_complete_before_the_failure_surfaces(
            self, monkeypatch):
        good = _point(seed=24)
        bad = _point(topology="never-heard-of-it", seed=25)
        with pytest.raises(SweepPointError):
            run_experiments([bad, good], max_workers=2, chunk_size=1)
        # The good point's result landed in the memo despite the failure.
        assert run_experiment(good).packets > 0


class _BrokenPool:
    """Pool whose futures all raise, as after a SIGKILLed worker."""

    def __init__(self, *args, **kwargs):
        pass

    def submit(self, fn, *args, **kwargs):
        from concurrent.futures import Future
        future = Future()
        future.set_exception(
            RuntimeError("A child process terminated abruptly"))
        return future

    def shutdown(self, *args, **kwargs):
        pass


class _StalledPool:
    """Pool whose futures never complete, as after a deadlocked worker."""

    def __init__(self, *args, **kwargs):
        pass

    def submit(self, fn, *args, **kwargs):
        from concurrent.futures import Future
        return Future()  # forever pending

    def shutdown(self, *args, **kwargs):
        pass


class TestDegradation:
    def test_broken_pool_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _BrokenPool)
        points = [_point(seed=s) for s in (31, 32, 33)]
        results = run_experiments(points, max_workers=2, chunk_size=1)
        assert [r.config for r in results] == points
        assert all(r.packets > 0 for r in results)

    def test_stalled_pool_times_out_then_degrades(self, monkeypatch):
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _StalledPool)
        points = [_point(seed=s) for s in (34, 35)]
        results = run_experiments(points, max_workers=2, chunk_size=1,
                                  timeout=0.05)
        assert [r.config for r in results] == points

    def test_degraded_run_matches_serial(self, monkeypatch):
        points = [_point(seed=s) for s in (36, 37)]
        serial = run_experiments(points, max_workers=1)
        clear_cache()
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _BrokenPool)
        degraded = run_experiments(points, max_workers=2, chunk_size=1)
        assert degraded == serial  # bit-identical despite the pool loss


class TestJournalResume:
    def test_completed_points_are_journaled_as_they_land(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        points = [_point(seed=s) for s in (41, 42)]
        results = run_experiments(points, max_workers=1, journal=path)
        journaled = SweepJournal(path).load()
        assert set(journaled) == {store_key(p) for p in points}
        assert results[0].packets > 0

    def test_resume_skips_journaled_points(self, tmp_path, monkeypatch):
        path = str(tmp_path / "sweep.journal")
        points = [_point(seed=s) for s in (43, 44, 45)]
        full = run_experiments(points, max_workers=1, journal=path)

        def bomb(cfg, check=False, **kwargs):
            raise AssertionError("resume must not re-simulate")

        clear_cache()
        monkeypatch.setattr(parallel, "run_experiment", bomb)
        resumed = run_experiments(points, max_workers=1, journal=path,
                                  resume=True)
        assert resumed == full  # bit-identical merge

    def test_partial_journal_recomputes_only_the_rest(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        points = [_point(seed=s) for s in (46, 47)]
        full = run_experiments(points, max_workers=1)
        clear_cache()
        # Journal only the first point, as if killed after one checkpoint.
        from repro.store import result_to_payload
        with SweepJournal(path) as journal:
            journal.append(store_key(points[0]),
                           result_to_payload(full[0]))
        resumed = run_experiments(points, max_workers=1, journal=path,
                                  resume=True)
        assert resumed == full

    def test_without_resume_the_journal_is_truncated(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        stale = _point(seed=48)
        run_experiments([stale], max_workers=1, journal=path)
        clear_cache()
        fresh = _point(seed=49)
        run_experiments([fresh], max_workers=1, journal=path)
        assert set(SweepJournal(path).load()) == {store_key(fresh)}


class TestStoreIntegration:
    def test_write_through_then_warm_hits(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        points = [_point(seed=s) for s in (51, 52)]
        cold = run_experiments(points, max_workers=1, store=store)
        assert store.stats["puts"] == 2
        clear_cache()
        store.reset_stats()
        warm = run_experiments(points, max_workers=1, store=store)
        assert warm == cold
        assert store.stats["hits"] == 2
        assert store.stats["misses"] == 0
        assert store.stats["puts"] == 0

    def test_store_hit_still_checkpoints_to_the_journal(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        point = _point(seed=53)
        run_experiments([point], max_workers=1, store=store)
        clear_cache()
        path = str(tmp_path / "sweep.journal")
        run_experiments([point], max_workers=1, store=store, journal=path)
        assert set(SweepJournal(path).load()) == {store_key(point)}

    def test_check_bypasses_memo_store_and_journal(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        point = _point(seed=54)
        run_experiments([point], max_workers=1, store=store)
        path = str(tmp_path / "sweep.journal")
        checked = run_experiments([point], max_workers=1, store=store,
                                  journal=path, check=True)
        # The monitored run really ran: it carries a monitor report, the
        # cached (unmonitored) result does not, and nothing was journaled.
        assert checked[0].monitor_report is not None
        assert SweepJournal(path).load() == {}
