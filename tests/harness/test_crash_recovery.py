"""Crash-recovery proofs: the acceptance tests of the resilient engine.

The headline guarantee — a sweep SIGKILLed mid-flight resumes to a
bit-identical result — is proven here with a real subprocess and a real
``SIGKILL``, not a simulated failure: the child sweeps with a journal,
the parent kills it the instant the journal shows partial progress, and
the resumed merge must equal an uninterrupted run field-for-field.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.harness.experiment import ExperimentConfig, clear_cache
from repro.harness.parallel import backoff_delay, run_experiments
from repro.store import ResultStore, SweepJournal, store_key

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: The exact point list the child sweeps (kept in one place so the
#: parent's reference run and resume use identical configs).
POINT_SEEDS = (61, 62, 63, 64, 65, 66)


def _point(seed, **overrides):
    base = dict(topology="mesh", kx=2, ky=2, concentration=1, routing="xy",
                pattern="uniform", rate=0.05, synth_cycles=120,
                synth_warmup=20, seed=seed)
    base.update(overrides)
    return ExperimentConfig(**base)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


_CHILD_SCRIPT = textwrap.dedent("""
    import sys, time
    sys.path.insert(0, {src!r})
    import repro.harness.parallel as parallel
    from repro.harness.experiment import ExperimentConfig

    real = parallel.run_experiment
    def slowed(cfg, check=False, **kwargs):
        result = real(cfg, check=check, **kwargs)
        time.sleep(0.25)   # widen the kill window between checkpoints
        return result
    parallel.run_experiment = slowed

    points = [ExperimentConfig(topology="mesh", kx=2, ky=2,
                               concentration=1, routing="xy",
                               pattern="uniform", rate=0.05,
                               synth_cycles=120, synth_warmup=20,
                               seed=s)
              for s in {seeds!r}]
    parallel.run_experiments(points, max_workers=1, journal={journal!r})
    print("UNEXPECTED: sweep finished before the kill", flush=True)
""")


def _journaled_count(path):
    try:
        return len(SweepJournal(path).load())
    except OSError:
        return 0


class TestKillMidSweep:
    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        journal = str(tmp_path / "sweep.journal")
        child = subprocess.Popen(
            [sys.executable, "-c",
             _CHILD_SCRIPT.format(src=os.path.abspath(SRC),
                                  seeds=POINT_SEEDS, journal=journal)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            # Kill the instant the journal proves partial progress.
            deadline = time.monotonic() + 60
            while (_journaled_count(journal) < 2
                   and time.monotonic() < deadline
                   and child.poll() is None):
                time.sleep(0.02)
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        completed = _journaled_count(journal)
        assert 1 <= completed < len(POINT_SEEDS), (
            f"kill landed outside the sweep: {completed} points journaled")

        points = [_point(s) for s in POINT_SEEDS]
        resumed = run_experiments(points, max_workers=1, journal=journal,
                                  resume=True)
        clear_cache()
        reference = run_experiments(points, max_workers=1)
        # Field-for-field equality of frozen dataclasses: the merged
        # journal + recomputed tail is indistinguishable from a run that
        # was never interrupted.
        assert resumed == reference

    def test_resumed_journal_ends_self_contained(self, tmp_path):
        journal = str(tmp_path / "sweep.journal")
        points = [_point(s) for s in POINT_SEEDS[:3]]
        full = run_experiments(points, max_workers=1, journal=journal)
        clear_cache()
        resumed = run_experiments(points, max_workers=1, journal=journal,
                                  resume=True)
        assert resumed == full
        # After the resume the journal still covers every point.
        assert set(SweepJournal(journal).load()) == {store_key(p)
                                                     for p in points}


class TestCorruptStoreRecovery:
    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        point = _point(71)
        first = run_experiments([point], max_workers=1, store=store)[0]
        path = store._entry_path(store_key(point))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.store-entry/1", "truncated')
        clear_cache()
        store.reset_stats()
        again = run_experiments([point], max_workers=1, store=store)[0]
        assert again == first  # recomputed, deterministically identical
        assert store.stats["quarantined"] == 1
        assert store.stats["puts"] == 1  # healthy entry rewritten
        assert len(os.listdir(store.quarantine_dir)) == 1  # kept, not erased
        clear_cache()
        store.reset_stats()
        run_experiments([point], max_workers=1, store=store)
        assert store.stats["hits"] == 1  # store healed


class TestConcurrentSweeps:
    def test_two_processes_race_one_store_without_damage(self, tmp_path):
        store_dir = str(tmp_path / "store")
        seeds = (81, 82, 83)
        script = textwrap.dedent(f"""
            import sys
            sys.path.insert(0, {os.path.abspath(SRC)!r})
            from repro.harness.experiment import ExperimentConfig
            from repro.harness.parallel import run_experiments
            from repro.store import ResultStore
            points = [ExperimentConfig(topology="mesh", kx=2, ky=2,
                                       concentration=1, routing="xy",
                                       pattern="uniform", rate=0.05,
                                       synth_cycles=120, synth_warmup=20,
                                       seed=s)
                      for s in {seeds!r}]
            run_experiments(points, max_workers=1,
                            store=ResultStore({store_dir!r}))
        """)
        racers = [subprocess.Popen([sys.executable, "-c", script],
                                   stdout=subprocess.PIPE,
                                   stderr=subprocess.PIPE)
                  for _ in range(2)]
        for racer in racers:
            _, err = racer.communicate(timeout=120)
            assert racer.returncode == 0, err.decode()
        store = ResultStore(store_dir)
        points = [_point(s) for s in seeds]
        assert sorted(store.keys()) == sorted(store_key(p) for p in points)
        assert store.verify()["quarantined"] == []
        assert os.listdir(store.tmp_dir) == []
        # The racers' entries serve a warm local run verbatim.
        reference = run_experiments(points, max_workers=1)
        clear_cache()
        store.reset_stats()
        warm = run_experiments(points, max_workers=1, store=store)
        assert warm == reference
        assert store.stats["misses"] == 0


class TestDeterministicBackoff:
    def test_documented_schedule(self):
        assert [backoff_delay(k, 0.5, 30.0) for k in range(1, 9)] == [
            0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 30.0]

    def test_two_failing_runs_wait_identically(self, monkeypatch):
        import repro.harness.parallel as parallel

        def broken(cfg, check=False, **kwargs):
            raise OSError("flaky")

        monkeypatch.setattr(parallel, "run_experiment", broken)
        schedules = []
        for _ in range(2):
            waits = []
            with pytest.raises(Exception):
                run_experiments([_point(91)], max_workers=1, retries=3,
                                backoff_base=0.25, backoff_cap=60.0,
                                sleep=waits.append)
            schedules.append(waits)
        assert schedules[0] == schedules[1] == [0.25, 0.5, 1.0]
