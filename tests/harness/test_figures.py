"""Smoke tests for the cheap figure entry points (the expensive ones are
exercised by benchmarks/bench_*.py)."""

from repro.harness import fig6, table1, table2
from repro.harness.figures import ALL_FIGURES


def test_fig6_pipeline_depths():
    rows = fig6(show=False)
    measured = {r["scheme"]: r["per_hop_cycles"] for r in rows}
    assert measured == {"Baseline": 4, "Pseudo": 3, "Pseudo+S+B": 2}


def test_table1_rows():
    rows = table1(show=False)
    assert ("# Cores", "32 out-of-order") in rows
    assert ("Cache Block Size", "64B") in rows


def test_table2_shares_sum_to_one():
    rows = table2(show=False)
    assert abs(sum(r["share"] for r in rows) - 1.0) < 1e-9


def test_every_figure_has_an_entry_point():
    expected = {"fig1", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13", "fig14", "table1", "table2", "chiplet"}
    assert set(ALL_FIGURES) == expected
    assert all(callable(fn) for fn in ALL_FIGURES.values())
