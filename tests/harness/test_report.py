"""Unit tests for result-table rendering."""

import pytest

from repro.harness.report import (format_cell, format_table, percent,
                                  reduction)


def test_format_cell():
    assert format_cell(0.123456) == "0.123"
    assert format_cell(123.456) == "123.46"
    assert format_cell("abc") == "abc"
    assert format_cell(7) == "7"


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all rows padded to the same width


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_percent():
    assert percent(0.163) == "+16.3%"
    assert percent(-0.05) == "-5.0%"


def test_reduction():
    assert reduction(20.0, 17.0) == pytest.approx(0.15)
    assert reduction(10.0, 12.0) == pytest.approx(-0.2)
    with pytest.raises(ValueError):
        reduction(0.0, 1.0)
