"""Tests for the experiment runner."""

import pytest

from repro.evc.topology import EvcMesh
from repro.harness.experiment import (ExperimentConfig, build_network,
                                      clear_cache, run_experiment)
from repro.network.config import PSEUDO_SB
from repro.topology.mesh import ConcentratedMesh


class TestConfig:
    def test_requires_exactly_one_traffic_source(self):
        with pytest.raises(ValueError):
            ExperimentConfig()  # neither benchmark nor pattern
        with pytest.raises(ValueError):
            ExperimentConfig(benchmark="fft", pattern="uniform")

    def test_label(self):
        cfg = ExperimentConfig(pattern="uniform", rate=0.1, scheme=PSEUDO_SB)
        assert "Pseudo+S+B" in cfg.label
        assert "uniform@0.1" in cfg.label

    def test_with_scheme(self):
        cfg = ExperimentConfig(pattern="uniform")
        assert cfg.with_scheme(PSEUDO_SB).scheme is PSEUDO_SB

    def test_hashable_for_caching(self):
        a = ExperimentConfig(pattern="uniform")
        b = ExperimentConfig(pattern="uniform")
        assert a == b and hash(a) == hash(b)


class TestBuild:
    def test_builds_requested_topology(self):
        cfg = ExperimentConfig(topology="cmesh", pattern="uniform")
        net = build_network(cfg)
        assert isinstance(net.topology, ConcentratedMesh)

    def test_evc_topology_uses_evc_routing(self):
        cfg = ExperimentConfig(topology="evc_mesh", kx=4, ky=4,
                               concentration=1, pattern="uniform")
        net = build_network(cfg)
        assert isinstance(net.topology, EvcMesh)
        assert net.routing.name == "evc_xy"

    def test_synthetic_runs_without_mshr_throttle(self):
        cfg = ExperimentConfig(pattern="uniform", mshrs=4)
        net = build_network(cfg)
        assert net.config.mshrs == 0  # only trace replay self-throttles


class TestRun:
    def test_synthetic_result_fields(self):
        cfg = ExperimentConfig(topology="mesh", kx=4, ky=4, concentration=1,
                               pattern="uniform", rate=0.08,
                               synth_cycles=300, synth_warmup=50)
        res = run_experiment(cfg, use_cache=False)
        assert res.packets > 0
        assert res.avg_latency > 0
        assert res.energy_pj > 0
        assert res.config is cfg

    def test_cache_returns_same_result(self):
        clear_cache()
        cfg = ExperimentConfig(topology="mesh", kx=4, ky=4, concentration=1,
                               pattern="uniform", rate=0.05,
                               synth_cycles=200, synth_warmup=40)
        first = run_experiment(cfg)
        second = run_experiment(cfg)
        assert first is second


class TestBackendObservability:
    """Backend stamps, checked vectorized runs, per-lane attribution."""

    BASE = dict(topology="mesh", kx=4, ky=4, concentration=1,
                routing="xy", pattern="uniform", rate=0.15,
                synth_cycles=200, seed=7)

    def test_manifest_carries_resolved_backend(self):
        res = run_experiment(ExperimentConfig(backend="scalar", **self.BASE),
                             use_cache=False)
        assert res.manifest["backend"] == "scalar"
        pytest.importorskip("numpy")
        res = run_experiment(
            ExperimentConfig(backend="vectorized", **self.BASE),
            use_cache=False)
        assert res.manifest["backend"] == "vectorized"

    def test_checked_vectorized_report(self):
        pytest.importorskip("numpy")
        res = run_experiment(
            ExperimentConfig(backend="vectorized", **self.BASE),
            check=True, check_stride=4)
        doc = res.monitor_report
        assert doc["backend"] == "vectorized"
        assert doc["violation_count"] == 0
        inv = doc["monitors"]["vector_invariants"]
        assert inv["violations"] == 0 and inv["stride"] == 4
        profile = doc["phase_profile"]
        assert profile["stepped_cycles"] > 0
        assert set(profile["phases"]) == {"bw", "va_sa", "st_credit",
                                          "pc", "inject"}

    def test_checked_scalar_has_no_phase_profile(self):
        res = run_experiment(ExperimentConfig(backend="scalar", **self.BASE),
                             check=True)
        assert res.monitor_report["backend"] == "scalar"
        assert "phase_profile" not in res.monitor_report

    def test_checked_batch_stamps_lanes(self):
        pytest.importorskip("numpy")
        from repro.harness.experiment import run_batch_experiments
        configs = [ExperimentConfig(backend="batched",
                                    **{**self.BASE, "rate": rate})
                   for rate in (0.05, 0.25)]
        results = run_batch_experiments(configs, check=True, check_stride=2)
        for lane, res in enumerate(results):
            assert res.manifest["backend"] == "batched"
            assert res.manifest["batch_lane"] == lane
            assert res.manifest["batch_lanes"] == 2
            doc = res.monitor_report
            assert doc["backend"] == "batched"
            assert doc["batch_lane"] == lane
            assert doc["violation_count"] == 0
            assert doc["phase_profile"]["stepped_cycles"] > 0
