"""Tests for the experiment runner."""

import pytest

from repro.evc.topology import EvcMesh
from repro.harness.experiment import (ExperimentConfig, build_network,
                                      clear_cache, run_experiment)
from repro.network.config import PSEUDO_SB
from repro.topology.mesh import ConcentratedMesh


class TestConfig:
    def test_requires_exactly_one_traffic_source(self):
        with pytest.raises(ValueError):
            ExperimentConfig()  # neither benchmark nor pattern
        with pytest.raises(ValueError):
            ExperimentConfig(benchmark="fft", pattern="uniform")

    def test_label(self):
        cfg = ExperimentConfig(pattern="uniform", rate=0.1, scheme=PSEUDO_SB)
        assert "Pseudo+S+B" in cfg.label
        assert "uniform@0.1" in cfg.label

    def test_with_scheme(self):
        cfg = ExperimentConfig(pattern="uniform")
        assert cfg.with_scheme(PSEUDO_SB).scheme is PSEUDO_SB

    def test_hashable_for_caching(self):
        a = ExperimentConfig(pattern="uniform")
        b = ExperimentConfig(pattern="uniform")
        assert a == b and hash(a) == hash(b)


class TestBuild:
    def test_builds_requested_topology(self):
        cfg = ExperimentConfig(topology="cmesh", pattern="uniform")
        net = build_network(cfg)
        assert isinstance(net.topology, ConcentratedMesh)

    def test_evc_topology_uses_evc_routing(self):
        cfg = ExperimentConfig(topology="evc_mesh", kx=4, ky=4,
                               concentration=1, pattern="uniform")
        net = build_network(cfg)
        assert isinstance(net.topology, EvcMesh)
        assert net.routing.name == "evc_xy"

    def test_synthetic_runs_without_mshr_throttle(self):
        cfg = ExperimentConfig(pattern="uniform", mshrs=4)
        net = build_network(cfg)
        assert net.config.mshrs == 0  # only trace replay self-throttles


class TestRun:
    def test_synthetic_result_fields(self):
        cfg = ExperimentConfig(topology="mesh", kx=4, ky=4, concentration=1,
                               pattern="uniform", rate=0.08,
                               synth_cycles=300, synth_warmup=50)
        res = run_experiment(cfg, use_cache=False)
        assert res.packets > 0
        assert res.avg_latency > 0
        assert res.energy_pj > 0
        assert res.config is cfg

    def test_cache_returns_same_result(self):
        clear_cache()
        cfg = ExperimentConfig(topology="mesh", kx=4, ky=4, concentration=1,
                               pattern="uniform", rate=0.05,
                               synth_cycles=200, synth_warmup=40)
        first = run_experiment(cfg)
        second = run_experiment(cfg)
        assert first is second
