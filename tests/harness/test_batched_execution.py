"""Batched execution through the harness: grouping, parity, fallback.

``run_batch_experiments`` must return, per lane, the exact ``Result``
that ``run_experiment`` produces for the same point; the scheduler's
batching tier must group only compatible points, keep one store/journal
entry per point, and fall back to solo execution when a batch fails.
"""

import dataclasses

import pytest

np = pytest.importorskip("numpy")

from repro.harness import parallel
from repro.harness.experiment import (ExperimentConfig, batch_key,
                                      run_batch_experiments, run_experiment)
from repro.harness.parallel import _group_units, run_experiments
from repro.store import SweepJournal, store_key


def _cfg(pattern="uniform", rate=0.1, seed=1, backend="batched",
         **overrides):
    overrides.setdefault("topology", "mesh")
    overrides.setdefault("kx", 4)
    overrides.setdefault("ky", 4)
    overrides.setdefault("concentration", 1)
    overrides.setdefault("routing", "xy")
    overrides.setdefault("synth_cycles", 200)
    overrides.setdefault("synth_warmup", 40)
    return ExperimentConfig(pattern=pattern, rate=rate, seed=seed,
                            backend=backend, **overrides)


class TestBatchKey:
    def test_compatible_points_share_a_key(self):
        a = _cfg(rate=0.02, seed=1)
        b = _cfg(pattern="transpose", rate=0.3, seed=9,
                 synth_cycles=400, synth_warmup=80)
        assert batch_key(a) == batch_key(b) is not None

    def test_chip_shape_splits_the_key(self):
        assert batch_key(_cfg()) != batch_key(_cfg(num_vcs=8))
        assert batch_key(_cfg()) != batch_key(_cfg(kx=2, ky=2))
        assert batch_key(_cfg()) != batch_key(_cfg(vc_policy="static"))

    def test_unbatchable_points_have_no_key(self):
        assert batch_key(_cfg(backend="scalar")) is None
        assert batch_key(_cfg(backend="vectorized")) is None
        trace = ExperimentConfig(benchmark="bodytrack", backend="batched")
        assert batch_key(trace) is None

    def test_auto_points_group(self):
        assert batch_key(_cfg(backend="auto")) is not None


class TestRunBatchExperiments:
    def test_lanes_equal_solo_results(self):
        cfgs = [_cfg(rate=0.02, seed=11),
                _cfg(rate=0.30, seed=12),
                _cfg(pattern="transpose", rate=0.10, seed=13,
                     synth_cycles=160, synth_warmup=40)]
        lanes = run_batch_experiments(cfgs, use_cache=False)
        for cfg, lane in zip(cfgs, lanes):
            assert lane == run_experiment(cfg, use_cache=False)

    def test_mixed_keys_rejected(self):
        with pytest.raises(ValueError):
            run_batch_experiments([_cfg(), _cfg(num_vcs=8)],
                                  use_cache=False)


class TestGrouping:
    def test_units_respect_keys_and_size(self):
        cfgs = [_cfg(seed=s) for s in range(5)]
        cfgs.insert(2, _cfg(seed=99, backend="scalar"))
        units = _group_units(list(enumerate(cfgs)), batch_size=3)
        shapes = [[idx for idx, _ in unit] for unit in units]
        assert shapes == [[0, 1, 3], [2], [4, 5]]

    def test_batch_size_one_disables_grouping(self):
        units = _group_units(list(enumerate([_cfg(seed=s)
                                             for s in range(3)])), 1)
        assert [len(unit) for unit in units] == [1, 1, 1]


class TestSchedulerTier:
    def test_batched_sweep_bit_identical_with_per_point_journal(
            self, tmp_path):
        cfgs = [_cfg(rate=rate, seed=seed)
                for rate, seed in [(0.02, 21), (0.30, 22), (0.10, 23)]]
        cfgs.append(_cfg(seed=24, backend="scalar"))
        journal_path = tmp_path / "sweep.journal"
        got = run_experiments(cfgs, max_workers=1,
                              journal=str(journal_path))
        for cfg, result in zip(cfgs, got):
            assert result == run_experiment(cfg, use_cache=False)
        journaled = SweepJournal(str(journal_path)).load()
        assert set(journaled) == {store_key(cfg) for cfg in cfgs}

    def test_failed_batch_falls_back_to_solo(self, monkeypatch):
        def boom(cfgs, **kwargs):
            raise RuntimeError("batch died")
        monkeypatch.setattr(parallel, "run_batch_experiments", boom)
        cfgs = [_cfg(rate=0.05, seed=31), _cfg(rate=0.15, seed=32)]
        got = run_experiments(cfgs, max_workers=1)
        for cfg, result in zip(cfgs, got):
            assert result == run_experiment(cfg, use_cache=False)

    def test_check_runs_are_never_batched(self):
        cfgs = [dataclasses.replace(_cfg(seed=s, backend="scalar"))
                for s in (41, 42)]
        units = _group_units(list(enumerate(cfgs)), 16)
        assert all(len(unit) == 1 for unit in units)
        got = run_experiments(cfgs, max_workers=1, check=True)
        assert all(r.monitor_report["violation_count"] == 0 for r in got)
