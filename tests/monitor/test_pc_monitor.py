"""PseudoCircuitMonitor: shadow tracking plus seeded PC-state corruption.

Each fault-injection test corrupts the live pseudo-circuit state the way a
bug in one termination-rule class would (conflicting establishes, route
mismatches, credit-blind restores) and asserts the monitor flags it at the
very next cycle boundary — "caught within one cycle".
"""

import pytest

from repro.monitor import PseudoCircuitMonitor

from .conftest import monitored_net


def _valid_register(net):
    """(router, input index) of some established pseudo-circuit."""
    for router in net.routers:
        for i, ip in enumerate(router.in_ports):
            if ip.pc.valid:
                return router, i
    raise AssertionError("no valid pseudo-circuit after the warm run")


def _invalidated_register(net):
    """(router, input index) of an invalidated-but-established register."""
    for router in net.routers:
        for i, ip in enumerate(router.in_ports):
            if not ip.pc.valid and ip.pc.in_vc >= 0:
                return router, i
    raise AssertionError("no invalidated pseudo-circuit register")


def _warm(monitor, **kwargs):
    kwargs.setdefault("rate", 0.2)
    kwargs.setdefault("cycles", 200)
    return monitored_net(monitor, **kwargs)


def _rules_after_one_step(monitor, net):
    before = net.cycle
    net.step()
    rules = {v.rule for v in monitor.violations}
    cycles = {v.cycle for v in monitor.violations}
    assert cycles == {before}, "violations must land at the next boundary"
    return rules


class TestCleanRun:
    def test_loaded_run_is_violation_free(self):
        monitor = PseudoCircuitMonitor(strict=True)
        net = monitored_net(monitor, rate=0.25)
        net.drain()
        monitor.finish(net)
        assert monitor.violations == []
        assert monitor.established > 0
        assert monitor.terminations  # saturating traffic terminates some

    def test_reuse_rates_match_stats(self):
        monitor = PseudoCircuitMonitor(strict=True)
        net = monitored_net(monitor, rate=0.2)
        stats = net.stats
        snap = monitor.snapshot()
        assert snap["flit_hops"] == stats.flit_hops
        assert snap["reuse_rate"] == pytest.approx(stats.reusability,
                                                   abs=1e-6)
        assert snap["buffer_bypass_rate"] == pytest.approx(
            stats.buffer_bypass_rate, abs=1e-6)
        assert sum(r["hops"] for r in snap["per_router"]) == stats.flit_hops


class TestFaultInjection:
    def test_conflict_output_class_two_inputs_one_output(self):
        """Two inputs latched to one output: the state a missed
        CONFLICT_OUTPUT termination would leave behind."""
        monitor = PseudoCircuitMonitor(strict=False)
        net = _warm(monitor)
        router, i = _valid_register(net)
        reg = router.in_ports[i].pc
        other = (i + 1) % len(router.in_ports)
        twin = router.in_ports[other].pc
        twin.in_vc = 0
        twin.out_port = reg.out_port
        twin.valid = True
        rules = _rules_after_one_step(monitor, net)
        assert "pc_output_conflict" in rules

    def test_conflict_input_class_retargeted_register(self):
        """A register silently retargeted to another output: the state a
        missed CONFLICT_INPUT termination would leave behind."""
        monitor = PseudoCircuitMonitor(strict=False)
        net = _warm(monitor)
        router, i = _valid_register(net)
        reg = router.in_ports[i].pc
        reg.out_port = (reg.out_port + 1) % len(router.out_ports)
        rules = _rules_after_one_step(monitor, net)
        assert "pc_state_drift" in rules

    def test_route_mismatch_class_rewritten_in_vc(self):
        """A circuit claiming a different input VC than it latched: what a
        missed ROUTE_MISMATCH termination would produce."""
        monitor = PseudoCircuitMonitor(strict=False)
        net = _warm(monitor)
        router, i = _valid_register(net)
        reg = router.in_ports[i].pc
        reg.in_vc = (reg.in_vc + 1) % 4
        rules = _rules_after_one_step(monitor, net)
        assert "pc_state_drift" in rules

    def test_no_credit_class_revalidated_register(self):
        """An invalidated register flipped back valid without a restore
        event: a credit-blind speculative restoration."""
        monitor = PseudoCircuitMonitor(strict=False)
        net = _warm(monitor, rate=0.3)
        router, i = _invalidated_register(net)
        router.in_ports[i].pc.valid = True
        rules = _rules_after_one_step(monitor, net)
        # Always a register drift; depending on who holds the target
        # output the same corruption can also surface as an output
        # conflict or a holder drift.
        assert "pc_state_drift" in rules

    def test_holder_corruption_caught(self):
        monitor = PseudoCircuitMonitor(strict=False)
        net = _warm(monitor)
        router, i = _valid_register(net)
        out_port = router.in_ports[i].pc.out_port
        router.out_ports[out_port].pc_holder = -1  # holder forgets
        rules = _rules_after_one_step(monitor, net)
        assert "pc_holder_drift" in rules
