"""CreditMonitor: edge discovery, clean runs, and seeded credit faults."""

import pytest

from repro.core.violation import InvariantViolation
from repro.monitor import CreditMonitor

from .conftest import monitored_net


def _stealable_edge(monitor):
    """An inter-router edge whose counter has credits left to steal."""
    for edge in monitor._edges:
        if edge.nic is None and edge.ovc.credits.count > 0:
            return edge
    raise AssertionError("no edge with spare credits")


class TestCleanRun:
    def test_loaded_run_is_violation_free(self):
        monitor = CreditMonitor(strict=True, deep_every=16)
        net = monitored_net(monitor, rate=0.25)
        net.drain()
        monitor.finish(net)
        assert monitor.violations == []
        assert monitor.edge_checks > 0

    def test_discovers_every_edge_kind(self):
        monitor = CreditMonitor(strict=True)
        monitored_net(monitor, cycles=1, rate=0.0)
        # 4x4 mesh, 4 VCs: router->router edges plus one ejection and one
        # injection edge set per terminal.
        assert monitor._eject and monitor._inject
        kinds = {edge.nic is not None for edge in monitor._edges}
        assert kinds == {True, False}
        # Every discovered counter starts full before traffic.
        snap = monitor.snapshot()
        assert snap["edges"] == len(monitor._edges)


class TestFaultInjection:
    def test_stolen_credit_caught_within_one_cycle(self):
        monitor = CreditMonitor(strict=True, deep_every=1)
        net = monitored_net(monitor, rate=0.25)
        edge = _stealable_edge(monitor)
        edge.ovc.credits.count -= 1  # corrupt: credit vanishes
        with pytest.raises(InvariantViolation) as exc:
            net.step()
        err = exc.value
        assert err.rule == "credit_conservation"
        assert err.monitor == "credits"
        assert (err.router, err.port, err.vc) == (edge.router, edge.port,
                                                  edge.vc)
        assert err.cycle == net.cycle

    def test_counter_out_of_range_caught(self):
        monitor = CreditMonitor(strict=True, deep_every=1)
        net = monitored_net(monitor, rate=0.25)
        edge = _stealable_edge(monitor)
        edge.ovc.credits.count = edge.ovc.credits.limit + 3
        with pytest.raises(InvariantViolation) as exc:
            net.step()
        assert exc.value.rule == "credit_range"

    def test_nonstrict_records_forged_credit(self):
        monitor = CreditMonitor(strict=False, deep_every=1)
        net = monitored_net(monitor, rate=0.25)
        for edge in monitor._edges:
            if (edge.nic is None
                    and edge.ovc.credits.count < edge.ovc.credits.limit):
                edge.ovc.credits.count += 1  # corrupt: forged credit
                break
        else:
            raise AssertionError("no partially drained edge")
        net.step()
        rules = {v.rule for v in monitor.violations}
        assert "credit_conservation" in rules
