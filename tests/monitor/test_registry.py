"""MetricsRegistry: composition, metrics documents, path helpers."""

import json

from repro.monitor import (
    METRICS_SCHEMA,
    METRICS_SET_SCHEMA,
    ConservationMonitor,
    CreditMonitor,
    MetricsRegistry,
    ProgressWatchdog,
    PseudoCircuitMonitor,
    default_registry,
    metrics_path,
    metrics_set,
    write_metrics,
)

from .conftest import monitored_net


class TestComposition:
    def test_default_registry_has_the_full_suite(self):
        registry = default_registry()
        kinds = {type(m) for m in registry.monitors}
        assert kinds == {ConservationMonitor, CreditMonitor,
                         PseudoCircuitMonitor, ProgressWatchdog}
        assert all(m.strict for m in registry.monitors)
        assert not any(m.strict
                       for m in default_registry(strict=False).monitors)

    def test_register_appends(self):
        registry = MetricsRegistry()
        monitor = registry.register(ConservationMonitor())
        assert registry.monitors == [monitor]


class TestDocument:
    def test_metrics_document_shape(self, tmp_path):
        registry = default_registry()
        net = monitored_net(registry.probe(), rate=0.15, cycles=150)
        net.drain()
        doc = registry.finish(net)
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["violation_count"] == 0 and doc["violations"] == []
        assert set(doc["monitors"]) == {"conservation", "credits",
                                        "pseudo_circuit", "watchdog"}
        assert doc["run"]["injected_packets"] == doc["run"][
            "ejected_packets"]
        assert doc["run"]["pc_established"] == doc["monitors"][
            "pseudo_circuit"]["established"]
        # The document is JSON-serializable as written.
        path = write_metrics(str(tmp_path / "run.metrics.json"), doc)
        assert json.load(open(path))["schema"] == METRICS_SCHEMA

    def test_metrics_set_bundles_runs(self):
        registry = default_registry()
        net = monitored_net(registry.probe(), rate=0.1, cycles=100)
        net.drain()
        doc = registry.finish(net)
        bundle = metrics_set([("baseline", doc), ("pseudo", doc)])
        assert bundle["schema"] == METRICS_SET_SCHEMA
        assert [run["label"] for run in bundle["runs"]] == ["baseline",
                                                            "pseudo"]
        assert bundle["violation_count"] == 0


class TestPaths:
    def test_metrics_path_rewrites_json_suffix(self):
        assert metrics_path("out.json") == "out.metrics.json"
        assert metrics_path("results/sweep.json") == \
            "results/sweep.metrics.json"
        assert metrics_path("noext") == "noext.metrics.json"


class TestBackendStamp:
    def test_scalar_snapshot_stamps_backend(self):
        registry = default_registry()
        net = monitored_net(registry.probe(), rate=0.1, cycles=100)
        net.drain()
        doc = registry.finish(net)
        assert doc["backend"] == "scalar"

    def test_explicit_backend_overrides_duck_typing(self):
        # The batched per-lane snapshot path passes a stats shim that is
        # not the live network, so it names the core explicitly.
        registry = default_registry()
        net = monitored_net(registry.probe(), rate=0.1, cycles=100)
        net.drain()
        for monitor in registry.monitors:
            monitor.finish(net)
        doc = registry.snapshot(net, backend="batched")
        assert doc["backend"] == "batched"
