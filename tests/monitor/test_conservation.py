"""ConservationMonitor: clean runs stay silent; corruption is caught."""

import pytest

from repro.core.violation import InvariantViolation
from repro.monitor import ConservationMonitor

from .conftest import monitored_net, occupied_buffers


class TestCleanRun:
    def test_loaded_run_is_violation_free(self):
        monitor = ConservationMonitor(strict=True, deep_every=16)
        monitored_net(monitor, rate=0.25)
        assert monitor.violations == []
        assert monitor.injected_flits > monitor.ejected_flits  # undrained
        assert monitor.buffer_checks > 0

    def test_drained_run_balances_and_finish_passes(self):
        monitor = ConservationMonitor(strict=True)
        net = monitored_net(monitor, rate=0.1, cycles=150)
        net.drain()
        monitor.finish(net)
        assert monitor.violations == []
        assert monitor.injected_flits == monitor.ejected_flits
        assert not monitor._open

    def test_snapshot_shape(self):
        monitor = ConservationMonitor(strict=True)
        net = monitored_net(monitor, rate=0.1, cycles=100)
        net.drain()
        snap = monitor.snapshot()
        assert snap["injected_flits"] == snap["ejected_flits"]
        assert snap["violations"] == 0
        assert snap["max_in_flight_flits"] > 0


class TestFaultInjection:
    def test_lost_flit_caught_within_one_cycle(self):
        """Dropping a buffered flit trips the occupancy check at the very
        next cycle boundary."""
        monitor = ConservationMonitor(strict=True, deep_every=1)
        net = monitored_net(monitor, rate=0.25)
        router, ip, vc = next(occupied_buffers(net))
        vc.buffer._q.popleft()  # corrupt: flit vanishes without an event
        with pytest.raises(InvariantViolation) as exc:
            net.step()
        err = exc.value
        assert err.rule == "buffer_occupancy"
        assert err.monitor == "conservation"
        assert (err.router, err.port) == (router.router_id, ip.port_id)
        assert err.cycle == net.cycle  # the boundary right after corruption

    def test_duplicated_flit_caught(self):
        monitor = ConservationMonitor(strict=True, deep_every=1)
        net = monitored_net(monitor, rate=0.25)
        _, _, vc = next(occupied_buffers(net))
        vc.buffer._q.append(vc.buffer._q[0])  # corrupt: flit duplicated
        with pytest.raises(InvariantViolation) as exc:
            net.step()
        assert exc.value.rule == "buffer_occupancy"

    def test_nonstrict_records_instead_of_raising(self):
        monitor = ConservationMonitor(strict=False, deep_every=1)
        net = monitored_net(monitor, rate=0.25)
        _, _, vc = next(occupied_buffers(net))
        vc.buffer._q.popleft()
        # Non-strict: drive the boundary check directly (stepping the
        # network would execute router phases on the corrupted buffer).
        monitor.on_cycle_start(net.cycle, net)
        rules = {v.rule for v in monitor.violations}
        assert "buffer_occupancy" in rules
