"""Shared helpers for the monitor tests: small monitored mesh runs."""

from repro.network.config import PSEUDO_SB, NetworkConfig
from repro.network.simulator import build_network
from repro.topology import make_topology
from repro.traffic.synthetic import SyntheticTraffic


def monitored_net(probe, kx=4, ky=4, rate=0.2, cycles=200, seed=3,
                  scheme=PSEUDO_SB, num_vcs=4, buffer_depth=4):
    """Run a small mesh under uniform traffic with ``probe`` attached and
    return the (still loaded, undrained) network."""
    config = NetworkConfig(num_vcs=num_vcs, buffer_depth=buffer_depth,
                           pseudo=scheme)
    topo = make_topology("mesh", kx, ky, 1)
    net = build_network(topo, config=config, seed=seed, probe=probe)
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate, 5,
                               seed=seed)
    net.run(cycles, traffic)
    return net


def occupied_buffers(net):
    """Yield (router, in_port, vc) objects with at least one buffered
    flit."""
    for router in net.routers:
        for ip in router.in_ports:
            for vc in ip.vcs:
                if vc.buffer._q:
                    yield router, ip, vc
