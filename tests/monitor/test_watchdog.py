"""ProgressWatchdog: stall/starvation detection, fast-forward awareness."""

import pytest

from repro.core.violation import InvariantViolation
from repro.monitor import ProgressWatchdog

from .conftest import monitored_net


class _StubNet:
    def __init__(self, cycle=0):
        self.cycle = cycle


class _Pkt:
    size = 5


def _fresh(strict=False, **kwargs):
    watchdog = ProgressWatchdog(strict=strict, **kwargs)
    watchdog.bind(_StubNet())
    return watchdog


class TestUnit:
    def test_stall_fires_after_limit(self):
        wd = _fresh(stall_limit=5, scan_every=0)
        wd.on_inject(0, 0, _Pkt())
        for cycle in range(7):
            wd.on_cycle_start(cycle, None)
        assert [v.rule for v in wd.violations] == ["deadlock"]
        assert wd.max_stall == 6

    def test_progress_rearms_the_stall_clock(self):
        wd = _fresh(stall_limit=5, scan_every=0)
        wd.on_inject(0, 0, _Pkt())
        for cycle in range(20):
            wd.on_cycle_start(cycle, None)
            if cycle % 4 == 0:
                wd.on_traverse(cycle, 0, 0, 0, 1, "sa", True, None)
        assert wd.violations == []

    def test_no_stall_without_in_flight_packets(self):
        wd = _fresh(stall_limit=5, scan_every=0)
        for cycle in range(50):
            wd.on_cycle_start(cycle, None)
        assert wd.violations == []

    def test_fast_forward_jump_does_not_count(self):
        """A quiescence fast-forward skips provably event-free cycles;
        the stall clock must not advance across it."""
        wd = _fresh(stall_limit=5, scan_every=0)
        wd.on_inject(0, 0, _Pkt())
        wd.on_cycle_start(0, None)
        wd.on_cycle_start(1, None)
        wd.on_cycle_start(500, None)  # jump of 498 cycles
        wd.on_cycle_start(501, None)
        assert wd.violations == []
        assert wd.max_stall <= 3

    def test_starvation_fires_for_unread_buffer(self):
        wd = _fresh(starve_limit=10, scan_every=1, stall_limit=10 ** 6)
        wd.on_inject(0, 0, _Pkt())
        wd.on_buffer_write(0, router=2, in_port=1, vc=3, flit=None)
        for cycle in range(15):
            wd.on_cycle_start(cycle, None)
        rules = [v.rule for v in wd.violations]
        assert rules == ["starvation"]
        err = wd.violations[0]
        assert (err.router, err.port, err.vc) == (2, 1, 3)

    def test_reads_keep_starvation_quiet(self):
        wd = _fresh(starve_limit=10, scan_every=1, stall_limit=10 ** 6)
        wd.on_buffer_write(0, 2, 1, 3, None)
        wd.on_buffer_write(0, 2, 1, 3, None)
        for cycle in range(30):
            wd.on_cycle_start(cycle, None)
            if cycle % 5 == 0:
                # Alternate write/read traffic on the same VC.
                wd.on_traverse(cycle, 2, 1, 3, 0, "sa", True, None)
                wd.on_buffer_write(cycle, 2, 1, 3, None)
        assert wd.violations == []

    def test_finish_flags_undelivered_packets(self):
        wd = _fresh()
        wd.on_inject(0, 0, _Pkt())

        class _Quiet(_StubNet):
            def quiescent(self):
                return True

        wd.finish(_Quiet(cycle=100))
        assert [v.rule for v in wd.violations] == ["deadlock"]


class TestIntegration:
    def test_loaded_run_is_violation_free(self):
        watchdog = ProgressWatchdog(strict=True)
        net = monitored_net(watchdog, rate=0.25)
        net.drain()
        watchdog.finish(net)
        assert watchdog.violations == []
        assert watchdog.in_flight_packets == 0
        assert watchdog.max_stall < watchdog.stall_limit

    def test_credit_loss_deadlock_detected(self):
        """Zeroing every credit counter mid-run freezes all in-flight
        packets; the watchdog must call it a deadlock."""
        watchdog = ProgressWatchdog(strict=True, stall_limit=60)
        net = monitored_net(watchdog, rate=0.25, cycles=120)
        assert watchdog.in_flight_packets > 0
        for router in net.routers:
            for out in router.out_ports:
                for ep in out.endpoints:
                    for ovc in ep.ovcs:
                        ovc.credits.count = 0
        for nic in net.nics:
            for ovc in nic.inject_state.ovcs:
                ovc.credits.count = 0
        with pytest.raises(InvariantViolation) as exc:
            net.run(500)
        assert exc.value.rule == "deadlock"
        assert exc.value.monitor == "watchdog"
