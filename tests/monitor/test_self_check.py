"""The monitored self-check and the harness/CLI --check plumbing."""

import json

import pytest

from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.parallel import run_experiments
from repro.monitor import self_check


def _cfg(**overrides):
    defaults = dict(topology="mesh", kx=4, ky=4, concentration=1,
                    routing="xy", pattern="uniform", rate=0.15,
                    synth_cycles=200, synth_warmup=50, seed=2)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestSelfCheck:
    def test_reduced_scale_passes(self):
        report = self_check(cycles=200)
        assert report["schema"] == "repro.self-check/1"
        assert len(report["runs"]) == 2
        for run in report["runs"]:
            assert run["violation_count"] == 0
            assert run["stats_identical"] is True
            assert run["run"]["ejected_packets"] > 0

    @pytest.mark.slow
    def test_acceptance_scale_passes(self):
        """ISSUE acceptance: 8x8 mesh at low load and saturation, all
        monitors attached, violation-free and bit-identical."""
        report = self_check(cycles=600)
        assert all(run["violation_count"] == 0
                   for run in report["runs"])


class TestHarnessCheck:
    def test_run_experiment_check_attaches_report(self):
        res = run_experiment(_cfg(), check=True)
        doc = res.monitor_report
        assert doc is not None and doc["violation_count"] == 0
        assert set(doc["monitors"]) == {"conservation", "credits",
                                        "pseudo_circuit", "watchdog"}

    def test_checked_run_matches_unchecked(self):
        """Monitors observe, never perturb: metrics identical."""
        bare = run_experiment(_cfg(), use_cache=False)
        checked = run_experiment(_cfg(), check=True)
        assert checked == bare  # Result equality ignores the reports

    def test_checked_runs_bypass_the_cache(self):
        first = run_experiment(_cfg(seed=5))  # populates the memo
        again = run_experiment(_cfg(seed=5), check=True)
        assert first.monitor_report is None
        assert again.monitor_report is not None

    def test_run_experiments_check_inline(self):
        results = run_experiments([_cfg(seed=8), _cfg(seed=9)],
                                  max_workers=1, check=True)
        assert all(r.monitor_report is not None for r in results)
        assert all(r.monitor_report["violation_count"] == 0
                   for r in results)


class TestBenchCheck:
    def test_bench_check_writes_metrics_doc(self, tmp_path):
        from repro.harness.bench import run_bench
        out = tmp_path / "bench.json"
        report = run_bench(cycles=120, repeats=1, out_path=str(out),
                           show=False, check=True)
        assert report["self_check"]["violations"] == 0
        assert report["self_check"]["stats_identical"] is True
        doc = json.loads((tmp_path / "bench.metrics.json").read_text())
        assert doc["schema"] == "repro.self-check/1"
