"""Regression reports: flattening, threshold rules, compare CLI."""

import json
import math

from repro.__main__ import main
from repro.monitor import compare_docs, flatten, render_report


class TestFlatten:
    def test_nested_paths_and_skips(self):
        flat = flatten({
            "a": {"b": 1, "c": 2.5},
            "skip_bool": True,
            "skip_nan": math.nan,
            "skip_str": "text",
            "top": 3,
        })
        assert flat == {"a.b": 1.0, "a.c": 2.5, "top": 3.0}

    def test_lists_index_by_name_or_label(self):
        flat = flatten({"workloads": [
            {"name": "low", "wall_s": 0.5},
            {"label": "sat", "wall_s": 2.0},
            {"wall_s": 1.0},
        ]})
        assert flat["workloads.low.wall_s"] == 0.5
        assert flat["workloads.sat.wall_s"] == 2.0
        assert flat["workloads.2.wall_s"] == 1.0


class TestRules:
    def test_identical_docs_all_ok(self):
        doc = {"run": {"avg_latency": 20.0, "reusability": 0.7}}
        report = compare_docs(doc, doc)
        assert report["regressed"] == 0 and report["rows"] == []

    def test_latency_regression_and_improvement(self):
        old = {"avg_latency": 100.0}
        assert compare_docs(old, {"avg_latency": 110.0})["rows"][0][
            "status"] == "regressed"
        assert compare_docs(old, {"avg_latency": 90.0})["rows"][0][
            "status"] == "improved"
        # Within the 3% tolerance: neither.
        assert compare_docs(old, {"avg_latency": 102.0})["rows"] == []

    def test_violations_have_zero_tolerance(self):
        report = compare_docs({"violation_count": 0},
                              {"violation_count": 1})
        assert report["rows"][0]["status"] == "regressed"
        # ... and fewer violations is an improvement.
        report = compare_docs({"violation_count": 3},
                              {"violation_count": 0})
        assert report["rows"][0]["status"] == "improved"

    def test_higher_is_better_for_reuse(self):
        report = compare_docs({"run": {"reusability": 0.70}},
                              {"run": {"reusability": 0.60}})
        assert report["rows"][0]["status"] == "regressed"
        report = compare_docs({"run": {"reusability": 0.60}},
                              {"run": {"reusability": 0.70}})
        assert report["rows"][0]["status"] == "improved"

    def test_wall_clock_tolerates_ten_percent(self):
        old = {"workloads": [{"name": "sat", "wall_s": 1.0}]}
        assert compare_docs(old, {"workloads": [
            {"name": "sat", "wall_s": 1.05}]})["rows"] == []
        report = compare_docs(old, {"workloads": [
            {"name": "sat", "wall_s": 1.5}]})
        assert report["rows"][0]["status"] == "regressed"

    def test_threshold_override_keeps_direction(self):
        old = {"avg_latency": 100.0}
        new = {"avg_latency": 110.0}
        report = compare_docs(old, new, {"*latency*": 0.5})
        assert report["rows"] == []  # 10% < 50% override
        report = compare_docs(old, {"avg_latency": 160.0},
                              {"*latency*": 0.5})
        assert report["rows"][0]["status"] == "regressed"

    def test_identity_keys_are_ignored(self):
        old = {"meta": {"generated_unix": 1}, "avg_latency": 10.0}
        new = {"meta": {"generated_unix": 999}, "avg_latency": 10.0}
        report = compare_docs(old, new)
        assert report["compared"] == 1

    def test_missing_and_added_metrics_reported(self):
        report = compare_docs({"a": 1, "gone": 2}, {"a": 1, "fresh": 3})
        assert report["missing_metrics"] == ["gone"]
        assert report["added_metrics"] == ["fresh"]

    def test_render_report_mentions_regressions(self):
        report = compare_docs({"avg_latency": 100.0},
                              {"avg_latency": 150.0})
        text = render_report(report)
        assert "avg_latency" in text and "regressed" in text


class TestCompareCli:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"avg_latency": 10.0})
        new = self._write(tmp_path / "new.json", {"avg_latency": 10.1})
        assert main(["compare", old, new, "--show-ok"]) == 0
        assert "compared" in capsys.readouterr().out

    def test_exit_one_on_regression_and_writes_report(self, tmp_path,
                                                      capsys):
        old = self._write(tmp_path / "old.json", {"violation_count": 0})
        new = self._write(tmp_path / "new.json", {"violation_count": 2})
        out = tmp_path / "report.json"
        assert main(["compare", old, new, "--out", str(out)]) == 1
        report = json.loads(out.read_text())
        assert report["regressed"] == 1
        assert "violation_count" in capsys.readouterr().out

    def test_threshold_flag_parses_overrides(self, tmp_path):
        old = self._write(tmp_path / "old.json", {"avg_latency": 100.0})
        new = self._write(tmp_path / "new.json", {"avg_latency": 120.0})
        assert main(["compare", old, new]) == 1
        assert main(["compare", old, new,
                     "--threshold", "*latency*=0.5"]) == 0

    def test_bad_threshold_spec_errors(self, tmp_path):
        old = self._write(tmp_path / "old.json", {})
        assert main(["compare", old, old, "--threshold", "nonsense"]) == 2


class TestBenchDocCompat:
    def test_flattens_a_bench_style_report(self):
        doc = {
            "meta": {"cycles": 1500, "git_sha": "abc"},
            "summary": {"weighted_speedup_vs_pr1": 1.4},
            "workloads": [{"name": "sat", "wall_s": 1.5,
                           "stats_identical": True}],
        }
        flat = flatten(doc)
        assert flat["workloads.sat.wall_s"] == 1.5
        assert "workloads.sat.stats_identical" not in flat  # bool skipped
        report = compare_docs(doc, doc)
        assert report["regressed"] == 0


class TestBackendIdentity:
    def test_document_backend_lookup_paths(self):
        from repro.monitor import document_backend
        assert document_backend({"backend": "vectorized"}) == "vectorized"
        assert document_backend({"meta": {"backend": "auto"}}) == "auto"
        assert document_backend({"runs": [
            {"backend": "scalar"}, {"backend": "scalar"}]}) == "scalar"
        assert document_backend({"runs": [
            {"backend": "scalar"}, {"backend": "batched"}]}) == \
            "mixed(batched,scalar)"
        assert document_backend({}) is None  # pre-stamp documents

    def test_compare_stamps_backends_and_flags_mismatch(self, tmp_path):
        from repro.monitor import compare_files, render_report
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"backend": "scalar",
                                   "avg_latency": 10.0}))
        new.write_text(json.dumps({"backend": "vectorized",
                                   "avg_latency": 10.0}))
        report = compare_files(str(old), str(new))
        docs = report["documents"]
        assert docs["old"]["backend"] == "scalar"
        assert docs["new"]["backend"] == "vectorized"
        assert report["backend_mismatch"]
        text = render_report(report)
        assert "(backend scalar)" in text
        assert "different backends" in text
        # Backend strings are identity, not metrics: nothing compared.
        assert report["regressed"] == 0

    def test_same_backend_is_not_a_mismatch(self, tmp_path):
        from repro.monitor import compare_files, render_report
        for name in ("a.json", "b.json"):
            (tmp_path / name).write_text(json.dumps(
                {"backend": "vectorized", "avg_latency": 1.0}))
        report = compare_files(str(tmp_path / "a.json"),
                               str(tmp_path / "b.json"))
        assert not report["backend_mismatch"]
        assert "different backends" not in render_report(report)

    def test_unstamped_documents_stay_quiet(self, tmp_path):
        from repro.monitor import compare_files
        for name in ("a.json", "b.json"):
            (tmp_path / name).write_text(json.dumps({"avg_latency": 1.0}))
        report = compare_files(str(tmp_path / "a.json"),
                               str(tmp_path / "b.json"))
        assert not report["backend_mismatch"]
        assert report["documents"]["old"]["backend"] is None
