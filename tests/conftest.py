"""Test fixtures and path setup."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.metrics.stats import NetworkStats
from repro.network.config import NetworkConfig
from repro.network.flit import Packet


@pytest.fixture
def stats():
    return NetworkStats()


@pytest.fixture
def config():
    return NetworkConfig()


def make_packet(src=0, dst=1, size=1, cycle=0, msg_type="data"):
    return Packet(src, dst, size, cycle, msg_type=msg_type)


@pytest.fixture
def packet():
    return make_packet()
