"""End-to-end integration tests across subsystems."""

import pytest

from repro.cmp.system import CmpSystem
from repro.harness.traces import clear_caches, get_trace
from repro.network.config import (ALL_SCHEMES, BASELINE, PSEUDO, PSEUDO_B,
                                  PSEUDO_S, PSEUDO_SB, NetworkConfig)
from repro.network.simulator import Network
from repro.topology.mesh import ConcentratedMesh, Mesh
from repro.traffic.synthetic import SyntheticTraffic
from repro.traffic.trace import TraceReplayTraffic


def synth_run(scheme, pattern="uniform", rate=0.1, cycles=800,
              vc_policy="static", seed=3):
    topo = Mesh(4, 4)
    net = Network(topo, NetworkConfig(pseudo=scheme), "xy", vc_policy,
                  seed=seed)
    net.stats.warmup_cycles = 200
    net.run(cycles, SyntheticTraffic(pattern, 16, rate, 5, seed=seed))
    net.drain()
    net.check_invariants()
    return net.stats


class TestSchemeOrdering:
    """The paper's headline ordering must hold on a steady workload."""

    def test_every_scheme_at_least_matches_baseline(self):
        base = synth_run(BASELINE).avg_latency
        for scheme in (PSEUDO, PSEUDO_S, PSEUDO_B, PSEUDO_SB):
            assert synth_run(scheme).avg_latency <= base + 0.5

    def test_buffer_bypass_improves_on_basic(self):
        basic = synth_run(PSEUDO).avg_latency
        bypass = synth_run(PSEUDO_B).avg_latency
        assert bypass < basic

    def test_speculation_raises_reusability(self):
        assert synth_run(PSEUDO_S).reusability > synth_run(PSEUDO).reusability

    def test_bypass_rate_only_with_flag(self):
        assert synth_run(PSEUDO).buffer_bypass_rate == 0.0
        assert synth_run(PSEUDO_B).buffer_bypass_rate > 0.0


class TestEnergyOrdering:
    def test_buffer_bypass_cuts_buffer_events(self):
        base = synth_run(BASELINE)
        bypassed = synth_run(PSEUDO_SB)
        base_rw = (base.buffer_writes + base.buffer_reads) / base.flit_hops
        pc_rw = (bypassed.buffer_writes
                 + bypassed.buffer_reads) / bypassed.flit_hops
        assert pc_rw < base_rw

    def test_sa_bypass_cuts_arbitrations(self):
        base = synth_run(BASELINE)
        pc = synth_run(PSEUDO)
        assert pc.sa_arbitrations < base.sa_arbitrations


class TestTracePipeline:
    """CMP -> trace -> replay, the paper's full methodology."""

    @pytest.fixture(scope="class")
    def trace(self):
        clear_caches()
        return get_trace("blackscholes", cycles=800, warmup=200, seed=2)

    def test_trace_has_coherence_mix(self, trace):
        kinds = {r.msg_type for r in trace.records}
        assert "read_req" in kinds and "read_resp" in kinds
        assert "write_req" in kinds

    def test_replay_delivers_everything(self, trace):
        net = Network(ConcentratedMesh(4, 4, 4),
                      NetworkConfig(mshrs=4), "xy", "static", seed=5)
        replay = TraceReplayTraffic(trace)
        while not replay.exhausted:
            replay.tick(net, net.cycle)
            net.step()
        net.drain()
        assert net.stats.ejected_packets == len(trace)
        net.check_invariants()

    def test_all_schemes_deliver_the_same_trace(self, trace):
        flit_counts = set()
        for scheme in ALL_SCHEMES:
            net = Network(ConcentratedMesh(4, 4, 4),
                          NetworkConfig(pseudo=scheme, mshrs=4),
                          "xy", "static", seed=5)
            replay = TraceReplayTraffic(trace)
            while not replay.exhausted:
                replay.tick(net, net.cycle)
                net.step()
            net.drain()
            flit_counts.add(net.stats.ejected_flits)
        assert len(flit_counts) == 1  # identical work under every scheme


class TestClosedLoop:
    def test_cmp_self_throttles(self):
        system = CmpSystem("mgrid", seed=4)
        system.run(500)
        # 4 MSHRs per core bound outstanding transactions per core.
        for core in system.cores:
            assert len(core.mshrs) <= system.config.mshrs_per_core
        assert sum(c.mshrs.stalls for c in system.cores) > 0

    def test_locality_ordering_matches_fig1(self):
        system = CmpSystem("equake", seed=4)
        system.run(1200)
        stats = system.network.stats
        assert stats.xbar_locality > stats.e2e_locality > 0.02
