"""Property-based end-to-end tests.

Hypothesis drives random workloads through randomly chosen configurations
and checks the conservation and safety invariants that must hold for ANY
combination: every injected packet is delivered exactly once, credits stay
within bounds, and pseudo-circuit state remains consistent.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.network.config import (ALL_SCHEMES, NetworkConfig)
from repro.network.flit import Packet
from repro.network.simulator import Network
from repro.topology import make_topology

TOPOLOGIES = [("mesh", 3, 3, 1), ("cmesh", 2, 2, 4), ("fbfly", 3, 3, 2),
              ("mecs", 3, 3, 2)]


@st.composite
def workload(draw):
    topo_spec = draw(st.sampled_from(TOPOLOGIES))
    terminals = topo_spec[1] * topo_spec[2] * topo_spec[3]
    n_packets = draw(st.integers(1, 25))
    packets = []
    for _ in range(n_packets):
        src = draw(st.integers(0, terminals - 1))
        dst = draw(st.integers(0, terminals - 1))
        if src == dst:
            continue
        size = draw(st.sampled_from([1, 2, 5]))
        packets.append((src, dst, size))
    scheme = draw(st.sampled_from(ALL_SCHEMES))
    routing = draw(st.sampled_from(["xy", "yx", "o1turn"]))
    va = draw(st.sampled_from(["static", "dynamic"]))
    spread = draw(st.integers(0, 3))
    return topo_spec, packets, scheme, routing, va, spread


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(workload())
def test_every_packet_delivered_exactly_once(spec):
    (name, kx, ky, conc), packets, scheme, routing, va, spread = spec
    topo = make_topology(name, kx, ky, conc)
    net = Network(topo, NetworkConfig(pseudo=scheme), routing, va, seed=7)
    injected = []
    for i, (src, dst, size) in enumerate(packets):
        p = Packet(src, dst, size, net.cycle)
        net.inject(p)
        injected.append(p)
        for _ in range(i % (spread + 1) if spread else 0):
            net.step()
    net.drain(max_cycles=50_000)
    for _ in range(5):
        net.step()  # let in-flight credit returns land
    # Conservation: exactly once, all flits.
    assert net.stats.ejected_packets == len(injected)
    assert net.stats.ejected_flits == sum(p.size for p in injected)
    for p in injected:
        assert p.eject_cycle >= p.inject_cycle >= p.create_cycle
        assert p.hops >= 1
    # Safety: pseudo-circuit and credit invariants.
    net.check_invariants()
    # All credits must have returned once quiescent.
    for router in net.routers:
        for out in router.out_ports:
            for ep in out.endpoints:
                for ovc in ep.ovcs:
                    assert ovc.credits.count == ovc.credits.limit
                    assert ovc.owner is None


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from(ALL_SCHEMES), st.integers(0, 10_000))
def test_pseudo_circuit_never_reorders_a_flow(scheme, seed):
    """Packets of one flow are delivered in injection order regardless of
    scheme (wormhole + per-VC FIFO order)."""
    topo = make_topology("mesh", 4, 2, 1)
    net = Network(topo, NetworkConfig(pseudo=scheme), "xy", "static",
                  seed=seed)
    order = []
    net.nics[3].on_packet = lambda p, c: order.append(p.pid)
    sent = []
    for i in range(8):
        p = Packet(0, 3, 1 + (i % 2) * 4, net.cycle)
        net.inject(p)
        sent.append(p.pid)
        if i % 3 == 0:
            net.step()
    net.drain()
    assert order == sent
