"""Integration tests specific to MECS multidrop channels."""

import pytest

from repro.network.config import NetworkConfig, PSEUDO_SB
from repro.network.flit import Packet
from repro.network.simulator import Network
from repro.topology.mecs import EAST, Mecs


def build(scheme=None, conc=1):
    cfg = NetworkConfig() if scheme is None else NetworkConfig(pseudo=scheme)
    return Network(Mecs(4, 4, conc), cfg, "xy", "dynamic", seed=1)


def test_one_network_hop_per_dimension():
    net = build()
    p = Packet(0, 15, 1, 0)  # corner to corner: one E drop + one N drop
    net.inject(p)
    net.drain()
    # Router hops: source router (inject->E), turn router (tap->N),
    # destination router (tap->eject).
    assert p.hops == 3


def test_far_drop_takes_longer_than_near_drop():
    def latency(dst):
        net = build()
        p = Packet(0, dst, 1, 0)
        net.inject(p)
        net.drain()
        return p.network_latency
    assert latency(3) == latency(1) + 2  # 2 extra wire cycles, same hops


def test_interleaved_drops_on_one_channel():
    """Two packets on the same output channel to different drops must both
    arrive even when in flight simultaneously."""
    net = build()
    far = Packet(0, 3, 5, 0)
    near = Packet(0, 1, 5, 0)
    net.inject(far)
    net.inject(near)
    net.drain()
    assert far.eject_cycle >= 0 and near.eject_cycle >= 0
    net.check_invariants()


def test_per_drop_credits_are_independent():
    net = build()
    out_e = net.routers[0].out_ports[EAST]
    assert len(out_e.endpoints) == 3
    # Consume all credits of the near drop; the far drop stays available.
    for ovc in out_e.endpoints[0].ovcs:
        while ovc.credits.count:
            ovc.credits.consume()
    assert out_e.any_credit()
    assert not out_e.endpoints[0].any_credit()


def test_pseudo_circuits_reused_across_drops():
    """A circuit is per (input, output port); packets to different drops of
    the same channel can share it."""
    net = build(PSEUDO_SB)
    for dst in (2, 3, 2, 3):
        p = Packet(0, dst, 1, net.cycle)
        net.inject(p)
        net.drain()
    assert net.stats.sa_bypass_flits > 0
    net.check_invariants()


@pytest.mark.parametrize("scheme", [None, PSEUDO_SB])
def test_concentrated_mecs_delivers(scheme):
    net = build(scheme, conc=2)
    n = net.topology.num_terminals
    packets = [Packet(i, (i + 9) % n, 2, 0) for i in range(0, n, 3)]
    for p in packets:
        net.inject(p)
    net.drain()
    assert all(p.eject_cycle >= 0 for p in packets)
    net.check_invariants()
