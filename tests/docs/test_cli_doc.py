"""Documentation drift check: ``docs/CLI.md`` must cover the real CLI.

The reference doc is only useful while it matches the argparse tree, so
this test walks ``repro.__main__.build_parser()`` — every subcommand at
every nesting level, every option string — and asserts each one appears
verbatim in ``docs/CLI.md``. Adding a flag without documenting it fails
CI (the docs-drift contract wired into the workflow).
"""

import argparse
import os

from repro.__main__ import build_parser

DOC_PATH = os.path.join(os.path.dirname(__file__), "..", "..", "docs",
                        "CLI.md")

#: Figure/table subcommands are documented as one family, not 16 separate
#: sections; the doc must still name every member once.
_HELP_OPTIONS = {"-h", "--help"}


def _walk(parser, prefix=""):
    """Yield ``(command_path, option_strings)`` for a parser tree."""
    options = set()
    subcommands = []
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, child in action.choices.items():
                subcommands.append((f"{prefix}{name}", child))
        else:
            options.update(action.option_strings)
    yield prefix.rstrip(" "), options - _HELP_OPTIONS
    for name, child in subcommands:
        yield from _walk(child, prefix=f"{name} ")


def _doc_text():
    with open(DOC_PATH, encoding="utf-8") as fh:
        return fh.read()


class TestCliDoc:
    def test_doc_exists(self):
        assert os.path.exists(DOC_PATH), "docs/CLI.md is missing"

    def test_every_subcommand_is_documented(self):
        doc = _doc_text()
        for path, _ in _walk(build_parser()):
            if not path:
                continue
            leaf = path.split()[-1]
            assert leaf in doc, (
                f"subcommand {path!r} is not mentioned in docs/CLI.md")

    def test_every_option_string_is_documented(self):
        doc = _doc_text()
        for path, options in _walk(build_parser()):
            for option in sorted(options):
                assert option in doc, (
                    f"option {option!r} of {path or 'repro'!r} is not "
                    f"documented in docs/CLI.md")

    def test_doc_does_not_invent_subcommands(self):
        # Every heading like `repro foo` in the doc names a real command.
        real = {path.split()[0] for path, _ in _walk(build_parser())
                if path}
        doc = _doc_text()
        for line in doc.splitlines():
            if line.startswith("## `repro "):
                name = line.split("`repro ", 1)[1].split("`")[0].split()[0]
                if name.endswith("N"):  # the `figN` family heading
                    continue
                assert name in real, (
                    f"docs/CLI.md documents unknown command {name!r}")
