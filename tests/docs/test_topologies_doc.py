"""Documentation drift check: ``docs/TOPOLOGIES.md`` must cover the real
topology registry.

The gallery is only useful while it matches what ``make_topology`` can
actually build, so this test walks ``TOPOLOGY_REGISTRY`` — every
topology name, constructor flag, supported routing and backend — and
asserts each appears in that topology's section of the doc. It also
checks the registry itself against the factories: every registry name
constructs, every advertised routing accepts the topology, and no
section documents a topology the registry does not know.
"""

import os
import re

import pytest

from repro.network.backend import CONCRETE_BACKENDS
from repro.routing import make_routing
from repro.topology import TOPOLOGY_REGISTRY, make_topology

DOC_PATH = os.path.join(os.path.dirname(__file__), "..", "..", "docs",
                        "TOPOLOGIES.md")


def _doc_text():
    with open(DOC_PATH, encoding="utf-8") as fh:
        return fh.read()


def _sections():
    """Map ``## `name``` heading -> section body."""
    doc = _doc_text()
    parts = re.split(r"^## `([^`]+)`.*$", doc, flags=re.MULTILINE)
    return dict(zip(parts[1::2], parts[2::2]))


class TestDocCoversRegistry:
    def test_doc_exists(self):
        assert os.path.exists(DOC_PATH), "docs/TOPOLOGIES.md is missing"

    def test_every_topology_has_a_section(self):
        sections = _sections()
        for name in TOPOLOGY_REGISTRY:
            assert name in sections, (
                f"topology {name!r} has no `## \\`{name}\\`` section in "
                f"docs/TOPOLOGIES.md")

    def test_doc_does_not_invent_topologies(self):
        for name in _sections():
            assert name in TOPOLOGY_REGISTRY, (
                f"docs/TOPOLOGIES.md documents unknown topology {name!r}")

    def test_sections_name_flags_routings_and_backends(self):
        sections = _sections()
        for name, info in TOPOLOGY_REGISTRY.items():
            body = sections[name]
            for flag in info.flags:
                assert flag in body, (name, flag)
            for routing in info.routings:
                assert f"`{routing}`" in body, (name, routing)
            for backend in info.backends:
                assert f"`{backend}`" in body, (name, backend)

    def test_every_section_has_a_diagram(self):
        for name, body in _sections().items():
            assert "```" in body, (
                f"section {name!r} lacks an ASCII diagram code block")


class TestRegistryMatchesFactories:
    @pytest.mark.parametrize("name", sorted(TOPOLOGY_REGISTRY))
    def test_registry_name_constructs(self, name):
        topo = make_topology(name, 4, 4, 4)
        assert topo.name == name
        assert topo.num_routers >= 1

    @pytest.mark.parametrize("name", sorted(TOPOLOGY_REGISTRY))
    def test_advertised_routings_accept_the_topology(self, name):
        topo = make_topology(name, 4, 4, 4)
        for routing in TOPOLOGY_REGISTRY[name].routings:
            assert make_routing(routing, topo) is not None

    def test_advertised_backends_are_real(self):
        for info in TOPOLOGY_REGISTRY.values():
            assert set(info.backends) <= set(CONCRETE_BACKENDS)
            assert "scalar" in info.backends

    def test_multidrop_topologies_exclude_vector_backends(self):
        for info in TOPOLOGY_REGISTRY.values():
            if info.multidrop:
                assert info.backends == ("scalar",)

    def test_unknown_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            make_topology("torus", 4, 4)

    def test_registry_flags_exist_on_the_cli(self):
        from repro.__main__ import build_parser
        parser = build_parser()
        run_parser = None
        import argparse
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                run_parser = action.choices["run"]
        cli_flags = {opt for action in run_parser._actions
                     for opt in action.option_strings}
        for info in TOPOLOGY_REGISTRY.values():
            for flag in info.flags:
                assert flag in cli_flags, flag
