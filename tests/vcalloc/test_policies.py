"""Unit tests for VC allocation policies."""

import pytest

from repro.network.flit import Packet
from repro.network.ports import OutVC
from repro.vcalloc import (DynamicVCAllocation, StaticVCAllocation,
                           make_vc_policy)


def ovcs(n=4, depth=4):
    return [OutVC(depth) for _ in range(n)]


def pkt(dst=5):
    return Packet(0, dst, 1, 0)


class TestDynamic:
    def test_prefers_most_credits(self):
        states = ovcs()
        states[0].credits.consume()
        states[2].credits.consume()
        states[2].credits.consume()
        assert DynamicVCAllocation().allocate(states, pkt(), 0, 4) == 1

    def test_skips_owned_vcs(self):
        states = ovcs()
        states[0].owner = (1, 1)
        states[1].owner = (1, 2)
        assert DynamicVCAllocation().allocate(states, pkt(), 0, 4) == 2

    def test_none_when_all_owned(self):
        states = ovcs()
        for s in states:
            s.owner = (0, 0)
        assert DynamicVCAllocation().allocate(states, pkt(), 0, 4) is None

    def test_respects_class_range(self):
        states = ovcs()
        assert DynamicVCAllocation().allocate(states, pkt(), 2, 4) == 2

    def test_bad_range_raises(self):
        with pytest.raises(ValueError):
            DynamicVCAllocation().allocate(ovcs(), pkt(), 3, 2)


class TestStatic:
    def test_designated_vc_is_destination_hash(self):
        assert StaticVCAllocation().allocate(ovcs(), pkt(dst=5), 0, 4) == 1
        assert StaticVCAllocation().allocate(ovcs(), pkt(dst=7), 0, 4) == 3

    def test_waits_for_designated_vc(self):
        states = ovcs()
        states[1].owner = (0, 0)
        assert StaticVCAllocation().allocate(states, pkt(dst=5), 0, 4) is None

    def test_class_range_offsets_hash(self):
        # Within class [2,4): vc = 2 + dst % 2.
        assert StaticVCAllocation().allocate(ovcs(), pkt(dst=5), 2, 4) == 3

    def test_ejection_falls_back_to_any_free(self):
        states = ovcs()
        states[1].owner = (0, 0)  # designated VC for dst=5 is busy
        got = StaticVCAllocation().allocate(states, pkt(dst=5), 0, 4,
                                            ejection=True)
        assert got == 0

    def test_designated_vc_helper(self):
        assert StaticVCAllocation.designated_vc(10, 0, 4) == 2
        assert StaticVCAllocation.designated_vc(10, 2, 4) == 2


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_vc_policy("dynamic"), DynamicVCAllocation)
        assert isinstance(make_vc_policy("static"), StaticVCAllocation)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_vc_policy("adaptive")
