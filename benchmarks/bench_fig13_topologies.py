"""Fig. 13 — impact on various topologies (mesh, cmesh, MECS, FBFLY).

Paper: the pseudo-circuit scheme reduces per-hop delay regardless of the
topology (up to ~20% in any topology); combining it with low-diameter
topologies compounds, giving a large total reduction versus the baseline
mesh.
"""

from conftest import run_once

from repro.harness import fig13


def _lat(rows, topo, scheme):
    for r in rows:
        if r["topology"] == topo and r["scheme"] == scheme:
            return r["latency"]
    raise KeyError((topo, scheme))


def test_fig13_topologies(benchmark):
    rows = run_once(benchmark, fig13, benchmark="fma3d", trace_cycles=1500)
    for topo in ("mesh", "cmesh", "mecs", "fbfly"):
        base = _lat(rows, topo, "Baseline")
        full = _lat(rows, topo, "Pseudo+S+B")
        # Pseudo-circuits help on every topology.
        assert full < base, topo
    # Low-diameter topologies beat the mesh baseline, and adding the
    # pseudo-circuit scheme compounds the reduction.
    mesh_base = _lat(rows, "mesh", "Baseline")
    for topo in ("cmesh", "mecs", "fbfly"):
        assert _lat(rows, topo, "Pseudo+S+B") < 0.6 * mesh_base
