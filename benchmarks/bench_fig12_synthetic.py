"""Fig. 12 — synthetic workload traffic (UR / BC / BP on an 8x8 mesh).

Paper: at any load before saturation the pseudo-circuit scheme beats the
baseline; at low load UR and BP improve ~11% and BC ~6%; BC saturates
earlier than UR (longer Manhattan distance) and BP earliest (diagonal
crossing under DOR).
"""

from conftest import run_once

from repro.harness import fig12

LOW, HIGH = 0.05, 0.15


def _lat(rows, pattern, load, scheme):
    for r in rows:
        if (r["pattern"] == pattern and r["load"] == load
                and r["scheme"] == scheme):
            return r["latency"]
    raise KeyError((pattern, load, scheme))


def test_fig12_synthetic(benchmark):
    rows = run_once(benchmark, fig12, loads=(LOW, HIGH), cycles=900)
    for pattern in ("uniform", "bitcomp", "transpose"):
        for load in (LOW, HIGH):
            base = _lat(rows, pattern, load, "Baseline")
            full = _lat(rows, pattern, load, "Pseudo+S+B")
            basic = _lat(rows, pattern, load, "Pseudo")
            # Pseudo wins before saturation, and the full scheme wins more.
            assert basic < base
            assert full <= basic
    # Low-load improvement is substantial (paper: ~6-11%).
    ur_gain = 1 - _lat(rows, "uniform", LOW, "Pseudo+S+B") / \
        _lat(rows, "uniform", LOW, "Baseline")
    assert ur_gain > 0.05
    # BC suffers from longer distance: higher latency than UR at equal load.
    assert _lat(rows, "bitcomp", LOW, "Baseline") > \
        _lat(rows, "uniform", LOW, "Baseline")
