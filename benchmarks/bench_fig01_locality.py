"""Fig. 1 — communication temporal locality.

Paper: crossbar-connection locality (~31% average) exceeds end-to-end
locality (~22% average), motivating reuse at crossbar granularity.
"""

from conftest import run_once

from repro.harness import fig1
from repro.harness.figures import QUICK_BENCHMARKS


def test_fig01_locality(benchmark):
    rows = run_once(benchmark, fig1, benchmarks=QUICK_BENCHMARKS,
                    cycles=1500)
    avg = rows[-1]
    assert avg["benchmark"] == "average"
    # Crossbar-connection locality must dominate end-to-end locality.
    assert avg["xbar_locality"] > avg["e2e_locality"]
    # Both localities are substantial, as in the paper.
    assert avg["e2e_locality"] > 0.10
    assert avg["xbar_locality"] > 0.25
    for row in rows[:-1]:
        assert row["xbar_locality"] >= row["e2e_locality"]
