"""Table I — CMP configuration parameters."""

from conftest import run_once

from repro.cmp import CmpConfig
from repro.harness import table1


def test_table1_config(benchmark):
    rows = run_once(benchmark, table1)
    table = dict(rows)
    assert table["# Cores"] == "32 out-of-order"
    assert table["L1D Cache"] == "4-way 32KB"
    assert table["L1I Cache"] == "1-way 32KB"
    assert table["Cache Block Size"] == "64B"
    assert table["Unified L2 Cache"] == "16-way 16MB"
    assert table["Memory Latency"] == "300 cycles"
    assert table["MSHRs / core"] == "4"
    assert table["Clock Frequency"] == "5GHz"
    # 16MB over 32 banks = 512KB per bank.
    assert CmpConfig().l2_bank_size == 512 * 1024
