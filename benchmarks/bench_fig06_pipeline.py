"""Fig. 6 — router pipeline stages / per-hop delay.

Paper: per-hop router delay of a head flit on a warm connection is 3 cycles
baseline (BW | VA+SA | ST), 2 with a pseudo-circuit (SA skipped), 1 with
buffer bypassing on top; plus 1 cycle of link traversal each.
"""

from conftest import run_once

from repro.harness import fig6


def test_fig06_per_hop_delay(benchmark):
    rows = run_once(benchmark, fig6)
    by_scheme = {r["scheme"]: r["per_hop_cycles"] for r in rows}
    assert by_scheme["Baseline"] == 4  # 3 router cycles + 1 link cycle
    assert by_scheme["Pseudo"] == 3
    assert by_scheme["Pseudo+S+B"] == 2
