"""Fig. 10 — pseudo-circuit reusability across routing and VA policies.

Paper: DOR with static VA maximizes reusability (same output port and VC
for flows to the same destination); dynamic VA and O1TURN reduce it;
routing/VA policy has a larger impact on reusability than application
locality does.
"""

from conftest import run_once

from repro.harness import fig10

GRID_BENCHMARKS = ("fma3d", "specjbb", "radix")


def _avg_reuse(rows, routing, va, scheme="Pseudo+S"):
    vals = [r["reusability"] for r in rows
            if r["routing"] == routing and r["va"] == va
            and r["scheme"] == scheme]
    return sum(vals) / len(vals)


def test_fig10_reusability_grid(benchmark):
    rows = run_once(benchmark, fig10, benchmarks=GRID_BENCHMARKS,
                    trace_cycles=2000)
    for routing in ("xy", "yx"):
        # Static VA beats dynamic VA on reusability for DOR.
        assert _avg_reuse(rows, routing, "static") > \
            _avg_reuse(rows, routing, "dynamic")
        # DOR + static beats O1TURN with either policy.
        assert _avg_reuse(rows, routing, "static") > \
            _avg_reuse(rows, "o1turn", "dynamic")
    # Speculation raises reusability over the basic scheme everywhere.
    for routing in ("xy", "yx", "o1turn"):
        for va in ("static", "dynamic"):
            basic = _avg_reuse(rows, routing, va, "Pseudo")
            spec = _avg_reuse(rows, routing, va, "Pseudo+S")
            assert spec >= basic
