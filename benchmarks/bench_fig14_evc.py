"""Fig. 14 — comparison with Express Virtual Channels.

Paper: EVC's benefit is heavily topology-dependent — strong on an 8x8 mesh,
absent (or negative) on a concentrated mesh whose short dimensions leave
EVCs underused while normal traffic squeezes into half the VCs. The
pseudo-circuit scheme improves both topologies. (Our EVC model gives
express flits contention-free intermediate hops, so it is an optimistic
EVC; see EXPERIMENTS.md.)
"""

from conftest import run_once

from repro.harness import fig14


def _norm(rows, topo, scheme):
    for r in rows:
        if r["topology"] == topo and r["scheme"] == scheme:
            return r["normalized"]
    raise KeyError((topo, scheme))


def test_fig14_evc(benchmark):
    rows = run_once(benchmark, fig14, benchmark="fma3d", trace_cycles=1500)
    # Pseudo-circuits help on both topologies.
    assert _norm(rows, "mesh", "Pseudo+S+B") < 1.0
    assert _norm(rows, "cmesh", "Pseudo+S+B") < 1.0
    # EVC helps on the mesh...
    assert _norm(rows, "mesh", "EVC") < 1.0
    # ...but its relative benefit shrinks on the concentrated mesh
    # (the paper sees it disappear entirely; our EVC model is optimistic).
    mesh_gain = 1 - _norm(rows, "mesh", "EVC")
    cmesh_gain = 1 - _norm(rows, "cmesh", "EVC")
    assert cmesh_gain < mesh_gain
