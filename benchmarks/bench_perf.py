"""Core-performance benchmark: active-set stepping vs exhaustive reference.

Not a paper figure — this is the perf-trajectory workload behind
``python -m repro bench`` (see README / BENCH_core.json), run here at a
reduced cycle count so the suite stays fast. It asserts the property that
makes the active-set core shippable: on every canonical workload the
active-set run produces *identical* ``NetworkStats`` to exhaustive
stepping (``time_workload`` raises otherwise) while skipping work.
"""

from conftest import run_once

from repro.harness.bench import CANONICAL_WORKLOADS, time_workload


def _all(cycles):
    return [{"name": name, **time_workload(scheme, rate, cycles, repeats=1)}
            for name, scheme, rate in CANONICAL_WORKLOADS]


def test_core_perf(benchmark):
    rows = run_once(benchmark, _all, 600)
    assert len(rows) == len(CANONICAL_WORKLOADS)
    for row in rows:
        # time_workload cross-checks stats between stepping modes and
        # raises on any divergence; the flag records that it passed.
        assert row["stats_identical"], row
        assert row["packets"] > 0, row
        assert row["wall_s"] > 0 and row["reference_wall_s"] > 0, row
