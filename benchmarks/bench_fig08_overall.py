"""Fig. 8 — overall performance and reusability on benchmark traces.

Paper: the pseudo-circuit scheme with both aggressive extensions improves
network performance by ~16% on average over the best baseline; buffer
bypassing contributes most of the gain beyond the basic scheme, while
speculation's contribution is small; reusability is substantial and rises
with speculation.
"""

from conftest import run_once

from repro.harness import fig8
from repro.harness.figures import QUICK_BENCHMARKS


def test_fig08_overall(benchmark):
    rows = run_once(benchmark, fig8, benchmarks=QUICK_BENCHMARKS,
                    trace_cycles=2000)
    avg = rows[-1]
    assert avg["benchmark"] == "average"
    # The full scheme wins over the best baseline on average.
    assert avg["reduction_Pseudo+S+B"] > 0.0
    # Buffer bypassing adds on top of the basic scheme.
    assert avg["reduction_Pseudo+S+B"] >= avg["reduction_Pseudo"]
    assert avg["reduction_Pseudo+B"] >= avg["reduction_Pseudo"]
    # Reusability is substantial and speculation increases it.
    assert avg["reuse_Pseudo"] > 0.15
    assert avg["reuse_Pseudo+S"] >= avg["reuse_Pseudo"]
