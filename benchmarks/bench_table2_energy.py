"""Table II — energy consumption characteristics of router components.

Paper (Orion at 45nm): buffer 23.4%, crossbar 76.22% (6.38 pJ), arbiter
0.24% of the energy of one flit hop.
"""

from conftest import run_once

from repro.harness import table2


def test_table2_energy(benchmark):
    rows = run_once(benchmark, table2)
    shares = {r["component"]: r["share"] for r in rows}
    pj = {r["component"]: r["pj_per_hop"] for r in rows}
    assert abs(shares["buffer"] - 0.234) < 0.002
    assert abs(shares["crossbar"] - 0.7622) < 0.002
    assert abs(shares["arbiter"] - 0.0024) < 0.001
    assert abs(pj["crossbar"] - 6.38) < 1e-9
    assert abs(sum(shares.values()) - 1.0) < 1e-9
