"""Ablation: sensitivity of the pseudo-circuit win to design parameters.

Not a paper figure — the sensitivity study DESIGN.md calls out: the gain
must survive the paper's fixed choices (4 VCs, 4-flit buffers) being varied,
and reuse must decay with load (the paper's Section VIII observation that
contention limits the scheme at saturation).
"""

from conftest import run_once

from repro.harness.sweep import sweep_buffer_depth, sweep_load, sweep_vcs


def _all(scale):
    return {
        "vcs": sweep_vcs(vc_counts=(2, 4, 8), synth_cycles=scale,
                         synth_warmup=scale // 4),
        "buffers": sweep_buffer_depth(depths=(2, 4, 8), synth_cycles=scale,
                                      synth_warmup=scale // 4),
        "load": sweep_load(loads=(0.05, 0.15, 0.25), synth_cycles=scale,
                           synth_warmup=scale // 4),
    }


def test_ablation_sensitivity(benchmark):
    sweeps = run_once(benchmark, _all, 800)
    # The scheme wins at every VC count and buffer depth tried.
    for key in ("vcs", "buffers"):
        for row in sweeps[key]:
            assert row["reduction"] > 0, (key, row)
    # Reuse decays as load (contention) rises.
    loads = sweeps["load"]
    assert loads[0]["reusability"] > loads[-1]["reusability"]
    assert all(row["reduction"] > 0 for row in loads)
