"""Fig. 11 — router energy consumption.

Paper: schemes without buffer bypassing save virtually no energy (arbiters
are a negligible share); buffer bypassing cuts buffer read/write energy,
about 5% of router energy on average, more when combined with speculation.
"""

from conftest import run_once

from repro.harness import fig11

BENCHES = ("fma3d", "specjbb", "radix")


def _avg(rows, scheme):
    vals = [r["normalized_energy"] for r in rows if r["scheme"] == scheme]
    return sum(vals) / len(vals)


def test_fig11_energy(benchmark):
    rows = run_once(benchmark, fig11, benchmarks=BENCHES, trace_cycles=2000)
    no_bypass = _avg(rows, "Pseudo")
    with_bypass = _avg(rows, "Pseudo+B")
    full = _avg(rows, "Pseudo+S+B")
    # Without buffer bypassing: virtually no saving (> 99% of baseline).
    assert no_bypass > 0.99
    # Buffer bypassing yields a real per-flit-hop energy saving.
    assert with_bypass < no_bypass
    assert with_bypass < 0.99
    # The full scheme saves at least as much as buffer bypassing alone.
    assert full <= with_bypass + 0.005
