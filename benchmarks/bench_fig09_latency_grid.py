"""Fig. 9 — latency reduction across routing algorithms and VA policies.

Paper: DOR (XY/YX) with static VA yields the best latency reduction;
YX+static reaches slightly higher reusability but less reduction than
XY+static due to traffic concentration.
"""

from conftest import run_once

from repro.harness import fig9

GRID_BENCHMARKS = ("fma3d", "specjbb", "radix")


def _avg_reduction(rows, routing, va, scheme="Pseudo+S+B"):
    vals = [r["reduction"] for r in rows
            if r["routing"] == routing and r["va"] == va
            and r["scheme"] == scheme]
    return sum(vals) / len(vals)


def test_fig09_latency_grid(benchmark):
    rows = run_once(benchmark, fig9, benchmarks=GRID_BENCHMARKS,
                    trace_cycles=2000)
    assert len(rows) == len(GRID_BENCHMARKS) * 3 * 2 * 4
    # DOR + static VA achieves the best (same-configuration) reduction.
    xy_static = _avg_reduction(rows, "xy", "static")
    assert xy_static > 0.05
    assert xy_static >= _avg_reduction(rows, "o1turn", "dynamic")
    assert xy_static >= _avg_reduction(rows, "o1turn", "static")
    # YX + static loses to XY + static on latency (traffic concentration).
    assert xy_static >= _avg_reduction(rows, "yx", "static") - 0.02
    # Every combination benefits from the full scheme on average.
    for routing in ("xy", "yx", "o1turn"):
        for va in ("static", "dynamic"):
            assert _avg_reduction(rows, routing, va) > 0.0
