"""Shared helpers for the figure-reproduction benchmarks.

Each bench regenerates one paper table/figure at a reduced scale (short
traces, subset of benchmarks) so the whole suite finishes in minutes, and
asserts the *shape* of the paper's result. EXPERIMENTS.md records the
paper-vs-measured comparison from a full run.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def run_once(bench_fixture, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return bench_fixture.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
