"""Quickstart: pseudo-circuits on an 8x8 mesh under uniform random traffic.

Builds two identical networks — a baseline speculative two-stage router and
one with the full pseudo-circuit scheme (speculation + buffer bypassing) —
drives both with the same synthetic workload, and compares latency,
reusability and router energy.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (BASELINE, PSEUDO_SB, Mesh, Network, NetworkConfig,
                   SyntheticTraffic)
from repro.energy import DEFAULT_ENERGY_MODEL


def run(scheme, label: str):
    topo = Mesh(8, 8)
    net = Network(topo, NetworkConfig(pseudo=scheme),
                  routing="xy", vc_policy="static", seed=42)
    traffic = SyntheticTraffic("uniform", topo.num_terminals, rate=0.10,
                               packet_size=5, seed=7)
    net.stats.warmup_cycles = 500
    net.run(3000, traffic)
    net.drain()
    stats = net.stats
    energy = DEFAULT_ENERGY_MODEL.router_energy(stats)
    print(f"{label:12s} latency {stats.avg_latency:7.2f} cycles   "
          f"reusability {stats.reusability:6.1%}   "
          f"buffer bypass {stats.buffer_bypass_rate:6.1%}   "
          f"energy/hop {energy['total'] / stats.flit_hops:5.2f} pJ")
    return stats.avg_latency


def main():
    print("8x8 mesh, XY routing, static VA, uniform random at 0.10 "
          "flits/node/cycle\n")
    base = run(BASELINE, "Baseline")
    fast = run(PSEUDO_SB, "Pseudo+S+B")
    print(f"\nLatency reduction: {1 - fast / base:.1%}")


if __name__ == "__main__":
    main()
