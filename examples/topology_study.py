"""Topology study: pseudo-circuits on mesh, cmesh, MECS and FBFLY.

Shows the Section VII.A result: low-diameter topologies cut the hop count,
pseudo-circuits cut the per-hop delay, and the two compose. Also contrasts
with Express Virtual Channels, whose benefit is topology-dependent.

Run:  python examples/topology_study.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import BASELINE, PSEUDO_SB
from repro.harness import fig13, fig14, print_table


def main():
    rows = fig13(benchmark="fma3d", trace_cycles=2000, show=False)
    table = []
    for topo in ("mesh", "cmesh", "mecs", "fbfly"):
        base = next(r for r in rows if r["topology"] == topo
                    and r["scheme"] == BASELINE.label)
        full = next(r for r in rows if r["topology"] == topo
                    and r["scheme"] == PSEUDO_SB.label)
        table.append((topo, base["latency"], full["latency"],
                      1 - full["latency"] / base["latency"],
                      full["reusability"]))
    print_table("Pseudo-circuits across topologies (fma3d trace)",
                ["topology", "baseline", "Pseudo+S+B", "reduction", "reuse"],
                table)

    rows = fig14(benchmark="fma3d", trace_cycles=2000, show=False)
    print_table("Express Virtual Channels comparison",
                ["topology", "scheme", "normalized latency"],
                [(r["topology"], r["scheme"], r["normalized"])
                 for r in rows])


if __name__ == "__main__":
    main()
