"""CMP coherence traffic: extract a trace, replay it under every scheme.

Reproduces the paper's methodology end-to-end on one benchmark:

1. run the closed-loop CMP substrate (32 cores + 32 L2 banks, directory
   MSI, 4 MSHRs per core) on a 4x4 concentrated mesh and record the
   injection trace;
2. replay the trace against the baseline router and the four
   pseudo-circuit schemes with NIC-level self-throttling.

Run:  python examples/cmp_coherence.py [benchmark]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ALL_SCHEMES, ConcentratedMesh, Network, NetworkConfig
from repro.cmp import CmpSystem
from repro.traffic import TraceReplayTraffic


def main():
    bench = sys.argv[1] if len(sys.argv) > 1 else "fma3d"
    print(f"Extracting a trace from the CMP substrate running {bench}...")
    system = CmpSystem(bench, seed=3)
    system.run(2500, record_trace=True, warmup=500)
    trace = system.trace
    summary = system.summary()
    print(f"  {len(trace)} messages, offered load "
          f"{trace.offered_load():.3f} flits/terminal/cycle, "
          f"L1 miss rate {summary['l1_miss_rate']:.1%}, "
          f"{summary['invals']} invalidations\n")

    print("Replaying against each router scheme (XY + static VA):")
    baseline_latency = None
    for scheme in ALL_SCHEMES:
        net = Network(ConcentratedMesh(4, 4, 4),
                      NetworkConfig(pseudo=scheme, mshrs=4),
                      routing="xy", vc_policy="static", seed=11)
        replay = TraceReplayTraffic(trace)
        while not replay.exhausted:
            replay.tick(net, net.cycle)
            net.step()
        net.drain()
        stats = net.stats
        if baseline_latency is None:
            baseline_latency = stats.avg_latency
        print(f"  {scheme.label:12s} latency {stats.avg_latency:6.2f} "
              f"({1 - stats.avg_latency / baseline_latency:+6.1%})  "
              f"reusability {stats.reusability:6.1%}")


if __name__ == "__main__":
    main()
