"""Full evaluation: regenerate every table and figure of the paper.

Runs the complete per-figure harness at a fuller scale than the quick
bench suite (all 13 benchmark profiles, longer traces). Expect this to
take tens of minutes; pass --quick for the reduced scale.

Run:  python examples/full_evaluation.py [--quick]
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness import (fig1, fig6, fig8, fig9, fig10, fig11, fig12,
                           fig13, fig14, table1, table2)
from repro.harness.figures import QUICK_BENCHMARKS
from repro.traffic import BENCHMARKS


def main():
    quick = "--quick" in sys.argv
    benches = QUICK_BENCHMARKS if quick else BENCHMARKS
    grid_benches = ("fma3d", "specjbb", "radix") if quick else BENCHMARKS
    cycles = 1500 if quick else 3000

    for name, call in [
            ("Table I", lambda: table1()),
            ("Table II", lambda: table2()),
            ("Fig. 1", lambda: fig1(benchmarks=benches, cycles=cycles)),
            ("Fig. 6", lambda: fig6()),
            ("Fig. 8", lambda: fig8(benchmarks=benches,
                                    trace_cycles=cycles)),
            ("Fig. 9", lambda: fig9(benchmarks=grid_benches,
                                    trace_cycles=cycles)),
            ("Fig. 10", lambda: fig10(benchmarks=grid_benches,
                                      trace_cycles=cycles)),
            ("Fig. 11", lambda: fig11(benchmarks=grid_benches,
                                      trace_cycles=cycles)),
            ("Fig. 12", lambda: fig12(cycles=800 if quick else 1500)),
            ("Fig. 13", lambda: fig13(trace_cycles=cycles)),
            ("Fig. 14", lambda: fig14(trace_cycles=cycles)),
    ]:
        start = time.time()
        call()
        print(f"[{name} done in {time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()
